#include "core/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "obs/metrics.hpp"

namespace mdl {

namespace {
// Set for the lifetime of every worker thread; queried by parallel_for's
// nested-parallelism guard. thread_local so no synchronization is needed.
thread_local bool t_is_pool_worker = false;

struct WorkerScope {
  WorkerScope() { t_is_pool_worker = true; }
  ~WorkerScope() { t_is_pool_worker = false; }
};
}  // namespace

bool ThreadPool::current_thread_is_worker() { return t_is_pool_worker; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> job) {
  std::packaged_task<void()> task(std::move(job));
  auto fut = task.get_future();
  {
    std::lock_guard lock(mu_);
    jobs_.push(std::move(task));
  }
  MDL_OBS_COUNTER_ADD("threadpool.tasks_submitted", 1);
  MDL_OBS_GAUGE_ADD("threadpool.queue_depth", 1.0);
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  WorkerScope scope;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      task = std::move(jobs_.front());
      jobs_.pop();
    }
    MDL_OBS_GAUGE_ADD("threadpool.queue_depth", -1.0);
    // Sampled by the flight-recorder counter sampler as a pool-utilization
    // timeline (a "C" track in the exported trace).
    MDL_OBS_GAUGE_ADD("threadpool.busy_workers", 1.0);
    {
      MDL_OBS_TIMER_US("threadpool.task_us");
      task();  // exceptions land in the packaged_task's future
    }
    MDL_OBS_GAUGE_ADD("threadpool.busy_workers", -1.0);
    MDL_OBS_COUNTER_ADD("threadpool.tasks_completed", 1);
  }
}

void parallel_for(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& f) {
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1 ||
      ThreadPool::current_thread_is_worker()) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  const std::size_t workers = std::min(pool->num_threads(), n);
  std::vector<std::future<void>> futs;
  futs.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futs.push_back(pool->submit([&] {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        try {
          f(i);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          throw;  // lands in this worker's future
        }
      }
    }));
  }
  // Drain EVERY future before leaving the scope — the workers capture
  // `next`, `failed`, and `f` by reference — and surface the first worker
  // exception to the caller instead of swallowing it.
  std::exception_ptr first_error;
  for (auto& fut : futs) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

namespace {

std::size_t default_shared_threads() {
  if (const char* env = std::getenv("MDL_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t& shared_size() {
  static std::size_t size = default_shared_threads();
  return size;
}

std::unique_ptr<ThreadPool>& shared_instance() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool* shared_pool() {
  const std::size_t want = shared_size();
  if (want <= 1) return nullptr;
  auto& pool = shared_instance();
  if (!pool || pool->num_threads() != want)
    pool = std::make_unique<ThreadPool>(want);
  return pool.get();
}

std::size_t shared_pool_threads() { return shared_size(); }

void set_shared_pool_threads(std::size_t n) {
  shared_size() = n == 0 ? default_shared_threads() : n;
  // Drop an over/under-sized pool now so the next shared_pool() call
  // rebuilds it; keeps at most one pool alive.
  auto& pool = shared_instance();
  if (pool && pool->num_threads() != shared_size()) pool.reset();
}

}  // namespace mdl
