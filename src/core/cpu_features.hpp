// Runtime CPU feature probe for the SIMD kernel dispatch in mdl::gemm.
//
// The probe runs once (first call) and is cached; it answers one question
// the dispatcher needs: can this process run the AVX2+FMA micro-kernels?
// That requires both the *build* to have compiled them in (MDL_HAVE_AVX2,
// set by CMake when the compiler accepts -mavx2 -mfma for the one
// per-file-ISA translation unit) and the *CPU* to advertise avx2 and fma —
// the same two-sided check hzr uses to gate its SSE4/ARMv8 CRC kernels
// behind one probe. Everything here is baseline-ISA code; only
// gemm_simd_avx2.cpp is built with vector flags.
#pragma once

namespace mdl::cpu {

/// CPUID-derived feature bits (false on non-x86 builds).
struct Features {
  bool avx2 = false;
  bool fma = false;
};

/// Cached one-shot probe of the running CPU.
const Features& features();

/// True when the AVX2 GEMM micro-kernels were compiled in *and* the CPU
/// supports them — the condition under which gemm::Mode::kSimd may run.
bool simd_gemm_supported();

/// Human-readable ISA the SIMD path would use: "avx2" or "scalar".
const char* isa_name();

}  // namespace mdl::cpu
