// Dense float32 tensor with value semantics.
//
// mdl::Tensor is the numeric currency of the library: a contiguous,
// row-major, float32 n-d array backed by std::vector<float>. Value semantics
// keep ownership trivial (C++ Core Guidelines R.1/F.15); the sizes involved
// in mobile-scale models make copies cheap relative to the math performed on
// them, and hot paths use in-place mutating members or the free functions in
// tensor_ops to avoid temporaries.
//
// Shape conventions used throughout mobiledl:
//   - matrices are [rows, cols];
//   - batched features are [batch, features];
//   - sequences are [time, batch, features].
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/random.hpp"

namespace mdl {

/// Contiguous row-major float32 tensor.
class Tensor {
 public:
  /// Empty tensor (zero elements, zero dims).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape. Every extent must be >= 0.
  explicit Tensor(std::vector<std::int64_t> shape);

  /// Tensor of the given shape filled with `fill`.
  Tensor(std::vector<std::int64_t> shape, float fill);

  /// Tensor of the given shape with explicitly provided contents
  /// (row-major). `values.size()` must equal the shape's element count.
  Tensor(std::vector<std::int64_t> shape, std::vector<float> values);

  // -- Factories ------------------------------------------------------------
  static Tensor zeros(std::vector<std::int64_t> shape);
  static Tensor ones(std::vector<std::int64_t> shape);
  static Tensor full(std::vector<std::int64_t> shape, float value);
  /// i.i.d. N(mean, stddev^2) entries.
  static Tensor randn(std::vector<std::int64_t> shape, Rng& rng,
                      float mean = 0.0F, float stddev = 1.0F);
  /// i.i.d. U[lo, hi) entries.
  static Tensor rand(std::vector<std::int64_t> shape, Rng& rng,
                     float lo = 0.0F, float hi = 1.0F);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor arange(std::int64_t n);

  // -- Introspection ---------------------------------------------------------
  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t shape(std::size_t dim) const;
  std::size_t ndim() const { return shape_.size(); }
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  /// Bounds-checked element access for 1-D / 2-D / 3-D tensors.
  float& at(std::int64_t i);
  float at(std::int64_t i) const;
  float& at(std::int64_t i, std::int64_t j);
  float at(std::int64_t i, std::int64_t j) const;
  float& at(std::int64_t i, std::int64_t j, std::int64_t k);
  float at(std::int64_t i, std::int64_t j, std::int64_t k) const;

  /// Unchecked linear access (hot loops).
  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  // -- Shape manipulation ------------------------------------------------
  /// Returns a tensor sharing no storage with `*this` but reinterpreting the
  /// same contents under a new shape. Element counts must match; one extent
  /// may be -1 (inferred).
  Tensor reshape(std::vector<std::int64_t> new_shape) const;

  /// 2-D transpose.
  Tensor transposed() const;

  /// Rows [begin, end) of a 2-D tensor (copies).
  Tensor slice_rows(std::int64_t begin, std::int64_t end) const;

  /// Row `i` of a 2-D tensor as a 1-D tensor (copies).
  Tensor row(std::int64_t i) const;

  /// Copies `src` (1-D, length cols) into row i of this 2-D tensor.
  void set_row(std::int64_t i, const Tensor& src);

  /// Time-step `t` of a [T, B, F] tensor as a [B, F] tensor (copies).
  Tensor time_step(std::int64_t t) const;

  /// Copies a [B, F] tensor into time-step t of this [T, B, F] tensor.
  void set_time_step(std::int64_t t, const Tensor& src);

  /// Concatenates 2-D tensors with equal row counts along columns.
  static Tensor concat_cols(std::span<const Tensor> parts);
  /// Concatenates 2-D tensors with equal column counts along rows.
  static Tensor concat_rows(std::span<const Tensor> parts);

  // -- In-place arithmetic -----------------------------------------------
  Tensor& fill(float value);
  Tensor& zero() { return fill(0.0F); }
  Tensor& add_(const Tensor& other);              ///< this += other
  Tensor& sub_(const Tensor& other);              ///< this -= other
  Tensor& mul_(const Tensor& other);              ///< elementwise
  Tensor& div_(const Tensor& other);              ///< elementwise
  Tensor& add_scaled_(const Tensor& other, float alpha);  ///< this += alpha*other
  Tensor& add_(float s);
  Tensor& mul_(float s);
  Tensor& clamp_(float lo, float hi);
  Tensor& apply_(const std::function<float(float)>& f);

  // -- Value-returning arithmetic -----------------------------------------
  Tensor operator+(const Tensor& other) const;
  Tensor operator-(const Tensor& other) const;
  Tensor operator*(const Tensor& other) const;  ///< elementwise
  Tensor operator*(float s) const;
  Tensor operator+(float s) const;
  Tensor operator-() const;

  // -- Reductions ----------------------------------------------------------
  double sum() const;
  double mean() const;
  float max() const;
  float min() const;
  double dot(const Tensor& other) const;
  /// L2 norm of the flattened tensor.
  double norm() const;
  /// Sum over rows of a 2-D tensor -> 1-D of length cols.
  Tensor sum_rows() const;
  /// Per-row argmax of a 2-D tensor.
  std::vector<std::int64_t> argmax_rows() const;
  /// Argmax of a 1-D tensor.
  std::int64_t argmax() const;

  /// Human-readable "[2, 3]" shape string.
  std::string shape_str() const;

  bool operator==(const Tensor& other) const = default;

 private:
  void check_index(std::int64_t flat_index) const;

  std::vector<std::int64_t> shape_;
  std::vector<float> data_;
};

std::ostream& operator<<(std::ostream& os, const Tensor& t);

// -- Linear algebra free functions -------------------------------------------
//
// All dense products share one accumulation policy (see gemm.hpp and
// DESIGN.md): float32, ascending-k, one multiply-add per term. They are
// backed by the mdl::gemm kernel suites (MDL_GEMM=naive|blocked|simd; the
// default probes the CPU). naive and blocked are bit-identical to each
// other at every thread count (MDL_THREADS); the AVX2 simd suite is
// deterministic and batch-invariant but ULP-shifted (fma). Dense kernels
// carry no zero-skip branch; pruned weights should use
// compress::pruned_matmul or a CsrMatrix.

/// C = A @ B for 2-D tensors ([m,k] x [k,n] -> [m,n]).
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A^T @ B ([k,m] x [k,n] -> [m,n]).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C = A @ B^T ([m,k] x [n,k] -> [m,n]).
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// out += A @ B; `out` must already be [m, n].
void matmul_acc(const Tensor& a, const Tensor& b, Tensor& out);
/// out += A @ B^T; `out` must already be [m, n]. Lets fused layers (GRU /
/// LSTM gate pre-activations) accumulate both input and recurrent products
/// into one buffer without a temporary.
void matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& out);
/// y = A @ x for [m,k] x [k] -> [m].
Tensor matvec(const Tensor& a, const Tensor& x);
/// Adds a 1-D bias (length cols) to every row of a 2-D tensor in place.
void add_row_broadcast(Tensor& t, const Tensor& bias);

/// Maximum absolute elementwise difference; tensors must be same shape.
float max_abs_diff(const Tensor& a, const Tensor& b);
/// True when every element differs by at most `tol`.
bool allclose(const Tensor& a, const Tensor& b, float tol = 1e-5F);

}  // namespace mdl
