#include "core/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/error.hpp"

namespace mdl {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MDL_CHECK(!headers_.empty(), "table needs at least one column");
}

TablePrinter& TablePrinter::begin_row() {
  rows_.emplace_back();
  return *this;
}

TablePrinter& TablePrinter::add(const std::string& cell) {
  MDL_CHECK(!rows_.empty(), "call begin_row() before add()");
  MDL_CHECK(rows_.back().size() < headers_.size(),
            "row already has " << headers_.size() << " cells");
  rows_.back().push_back(cell);
  return *this;
}

TablePrinter& TablePrinter::add(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add(os.str());
}

TablePrinter& TablePrinter::add(std::int64_t value) {
  return add(std::to_string(value));
}

TablePrinter& TablePrinter::add_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return add(os.str());
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << cell;
      os << (c + 1 < headers_.size() ? " | " : " |");
    }
    os << '\n';
  };

  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string format_bytes(std::uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(u == 0 ? 0 : 1) << v << ' '
     << units[u];
  return os.str();
}

}  // namespace mdl
