// Deterministic pseudo-random number generation for mobiledl.
//
// All stochastic components of the library (weight init, data simulation,
// dropout, DP noise, client sampling, ...) draw from mdl::Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256** seeded via splitmix64 — fast, high quality, and trivially
// forkable into independent streams (Rng::fork), which the federated
// simulator uses to give every client its own stream.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace mdl {

class BinaryReader;
class BinaryWriter;

/// xoshiro256** PRNG with distribution helpers. Copyable; copies evolve
/// independently.
class Rng {
 public:
  /// Seeds the four 64-bit state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Derives an independent generator; deterministic given this Rng's
  /// current state (advances this Rng once).
  Rng fork();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::int64_t uniform_int(std::int64_t n);
  /// Standard normal via Box-Muller (cached second variate).
  double normal();
  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli draw with success probability p.
  bool bernoulli(double p);
  /// Laplace(0, scale) draw via inverse CDF.
  double laplace(double scale);
  /// Exponential with the given rate (lambda). Requires rate > 0.
  double exponential(double rate);
  /// Gamma(shape, 1) via Marsaglia-Tsang; shape > 0.
  double gamma(double shape);
  /// Symmetric Dirichlet over k categories with concentration alpha.
  std::vector<double> dirichlet(std::size_t k, double alpha);
  /// Samples an index from unnormalized non-negative weights.
  std::size_t categorical(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(static_cast<std::int64_t>(i)));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) (partial Fisher-Yates).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Writes the full engine state (xoshiro words + Box-Muller cache), so a
  /// deserialized Rng continues the exact same stream — the basis of the
  /// bit-identical checkpoint/resume guarantee in mdl::ckpt.
  void serialize(BinaryWriter& w) const;
  static Rng deserialize(BinaryReader& r);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mdl
