// Blocked, register-tiled, thread-parallel dense GEMM kernels.
//
// Every dense product in mobiledl (matmul / matmul_acc / matmul_tn /
// matmul_nt / matvec) funnels into the kernels declared here. The design is
// constrained by the library's determinism guarantees (mdl::sim replay and
// mdl::ckpt resume are bit-identity tests): results must not depend on the
// thread count or on whether the blocked or the naive path ran.
//
// Accumulation policy (the library-wide contract, see DESIGN.md):
//   every output element is a single float32 accumulation chain over
//   k = 0, 1, ..., K-1 — one multiply-add per term, in ascending-k order,
//   starting from the destination value (0 for the non-accumulating
//   entry points).
//
// The blocked kernels preserve that chain exactly:
//   - cache blocking over K processes k-blocks in ascending order and runs
//     ascending-k inside each block, so the per-element term order is the
//     naive order;
//   - the micro-kernel unrolls K by 4 with an explicit scalar accumulator
//     (`cj += a0*b0[j]; cj += a1*b1[j]; ...`), which vectorizes across j
//     without reassociating the per-element chain;
//   - thread parallelism shards C row panels: a row is computed start to
//     finish by exactly one worker, so panel boundaries and worker count
//     never touch the arithmetic.
// Hence tiled == naive == tiled-at-N-threads, bit for bit (the
// tests/test_gemm.cpp equivalence suite enforces this at 1/2/8 threads).
//
// Shapes below the blocking threshold take a direct serial loop (same
// chain) so small recurrent steps (GRU/LSTM gates) pay no tiling or
// dispatch overhead.
#pragma once

#include <cstdint>

#include "core/tensor.hpp"

namespace mdl::gemm {

// Tile sizes. kKc * kNc floats of B (128 KiB) stay L2-resident across a row
// panel; a C row segment (kNc floats) stays in L1 while its k-block runs.
inline constexpr std::int64_t kPanelRows = 32;  ///< rows per parallel shard
inline constexpr std::int64_t kKc = 256;        ///< k-block (macro kernel)
inline constexpr std::int64_t kNc = 128;        ///< j-block (macro kernel)

/// FLOP count (2*m*k*n) at and above which the blocked path is used.
inline constexpr std::int64_t kBlockFlopThreshold = 1LL << 18;
/// FLOP count at and above which row panels are sharded across the shared
/// pool. Below it, even the blocked path runs on the calling thread.
inline constexpr std::int64_t kParallelFlopThreshold = 1LL << 21;

/// Kernel selector, settable at runtime for A/B benchmarking and debugging:
/// MDL_GEMM=naive routes the public entry points through the reference
/// kernels; MDL_GEMM=tiled (default) uses the blocked/parallel suite.
enum class Mode { kTiled, kNaive };
Mode mode();
void set_mode(Mode m);

// -- Blocked kernels ---------------------------------------------------------
// Direct entry points (no threshold dispatch) used by the public tensor ops
// and by the equivalence tests. All require pre-shaped outputs and
// *accumulate* into them.

/// out += A @ B for [m,k] x [k,n]; blocked and, above the parallel
/// threshold, sharded over row panels of the shared pool.
void tiled_matmul_acc(const Tensor& a, const Tensor& b, Tensor& out);

/// out += A^T @ B for [k,m] x [k,n] (packs A^T, then runs the blocked
/// kernel; the packing copy is exact so the accumulation chain is
/// unchanged).
void tiled_matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& out);

/// out += A @ B^T for [m,k] x [n,k] (packs B^T, then runs the blocked
/// kernel).
void tiled_matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& out);

/// out += A @ x for [m,k] x [k]; row-sharded above the parallel threshold.
void tiled_matvec_acc(const Tensor& a, const Tensor& x, Tensor& out);

// -- Reference kernels -------------------------------------------------------
// The retained naive loops that define the canonical accumulation order.
// Serial, unblocked, branch-free inner loops. The equivalence suite compares
// the tiled kernels against these bit for bit; MDL_GEMM=naive serves them
// as the public kernels (the "before" baseline for perf evidence).
namespace reference {

void matmul_acc(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& out);
void matvec_acc(const Tensor& a, const Tensor& x, Tensor& out);

}  // namespace reference

}  // namespace mdl::gemm
