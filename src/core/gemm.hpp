// Blocked, register-tiled, thread-parallel dense GEMM kernels.
//
// Every dense product in mobiledl (matmul / matmul_acc / matmul_tn /
// matmul_nt / matvec) funnels into the kernels declared here. The design is
// constrained by the library's determinism guarantees (mdl::sim replay and
// mdl::ckpt resume are bit-identity tests): results must not depend on the
// thread count or on whether the blocked or the naive path ran.
//
// Accumulation policy (the library-wide contract, see DESIGN.md):
//   every output element is a single float32 accumulation chain over
//   k = 0, 1, ..., K-1 — one multiply-add per term, in ascending-k order,
//   starting from the destination value (0 for the non-accumulating
//   entry points).
//
// The blocked kernels preserve that chain exactly:
//   - cache blocking over K processes k-blocks in ascending order and runs
//     ascending-k inside each block, so the per-element term order is the
//     naive order;
//   - the micro-kernel unrolls K by 4 with an explicit scalar accumulator
//     (`cj += a0*b0[j]; cj += a1*b1[j]; ...`), which vectorizes across j
//     without reassociating the per-element chain;
//   - thread parallelism shards C row panels: a row is computed start to
//     finish by exactly one worker, so panel boundaries and worker count
//     never touch the arithmetic.
// Hence tiled == naive == tiled-at-N-threads, bit for bit (the
// tests/test_gemm.cpp equivalence suite enforces this at 1/2/8 threads).
//
// Shapes below the blocking threshold take a direct serial loop (same
// chain) so small recurrent steps (GRU/LSTM gates) pay no tiling or
// dispatch overhead.
#pragma once

#include <cstdint>
#include <string>

#include "core/tensor.hpp"

namespace mdl::gemm {

// Tile sizes. kKc * kNc floats of B (128 KiB) stay L2-resident across a row
// panel; a C row segment (kNc floats) stays in L1 while its k-block runs.
inline constexpr std::int64_t kPanelRows = 32;  ///< rows per parallel shard
inline constexpr std::int64_t kKc = 256;        ///< k-block (macro kernel)
inline constexpr std::int64_t kNc = 128;        ///< j-block (macro kernel)

/// FLOP count (2*m*k*n) at and above which the blocked path is used.
inline constexpr std::int64_t kBlockFlopThreshold = 1LL << 18;
/// FLOP count at and above which row panels are sharded across the shared
/// pool. Below it, even the blocked path runs on the calling thread.
inline constexpr std::int64_t kParallelFlopThreshold = 1LL << 21;

/// Kernel selector. Three suites sit behind the public entry points:
///
///   kNaive   — serial reference loops (the canonical ascending-k scalar
///              chain; the equivalence/differential oracle).
///   kBlocked — cache-blocked, register-tiled, thread-parallel scalar
///              kernels. Bit-identical to kNaive by construction.
///   kSimd    — AVX2+FMA micro-kernels for matmul / matmul_nt /
///              matmul_nt_acc (other ops fall back to kBlocked). Float
///              results are ULP-bounded against the scalar chain, never
///              bit-identical; int8 results are exact.
///
/// Selection: MDL_GEMM=naive|blocked|simd overrides everything ("tiled" is
/// accepted as a legacy alias for blocked; any other value is a clean
/// mdl::Error at first use). Without the override, a one-shot CPUID probe
/// (core/cpu_features.hpp) picks kSimd when the build and CPU support
/// AVX2+FMA, else kBlocked. The resolved kernel is logged once through
/// mdl::obs (gemm.kernel.<name> counter + a flight-recorder instant) and
/// exposed via kernel_name() for bench JSONL provenance.
enum class Mode { kNaive, kBlocked, kSimd };
Mode mode();
void set_mode(Mode m);

/// Parses an MDL_GEMM value; throws mdl::Error on anything but
/// naive / blocked / tiled (alias) / simd. kSimd additionally requires
/// cpu::simd_gemm_supported() — requesting it on an unsupported
/// machine/build is an error, not a silent fallback.
Mode parse_mode(const std::string& value);

/// The MDL_GEMM= / probe resolution step, exposed for tests: env override
/// wins (possibly throwing); otherwise the CPUID probe decides.
Mode resolve_mode(const char* env_value);

/// "naive" / "blocked" / "simd" for the currently selected mode.
const char* kernel_name();
const char* mode_name(Mode m);

// -- Blocked kernels ---------------------------------------------------------
// Direct entry points (no threshold dispatch) used by the public tensor ops
// and by the equivalence tests. All require pre-shaped outputs and
// *accumulate* into them.

/// out += A @ B for [m,k] x [k,n]; blocked and, above the parallel
/// threshold, sharded over row panels of the shared pool.
void tiled_matmul_acc(const Tensor& a, const Tensor& b, Tensor& out);

/// out += A^T @ B for [k,m] x [k,n] (packs A^T, then runs the blocked
/// kernel; the packing copy is exact so the accumulation chain is
/// unchanged).
void tiled_matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& out);

/// out += A @ B^T for [m,k] x [n,k] (packs B^T, then runs the blocked
/// kernel).
void tiled_matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& out);

/// out += A @ x for [m,k] x [k]; row-sharded above the parallel threshold.
void tiled_matvec_acc(const Tensor& a, const Tensor& x, Tensor& out);

// -- SIMD kernels ------------------------------------------------------------
// AVX2+FMA entry points (require cpu::simd_gemm_supported()). Unlike the
// blocked suite there is no small-shape scalar fallback: every shape runs
// the same per-element chain, so a row's bits cannot depend on the batch
// it rides in (the mdl::serve batching invariant). Row panels shard across
// the shared pool above the parallel flop threshold.

/// out += A @ B, AVX2 broadcast-FMA kernel (ascending-k fma chain).
void simd_matmul_acc(const Tensor& a, const Tensor& b, Tensor& out);

/// out += A @ B^T for [m,k] x [n,k], AVX2 8-lane dot kernel (no packing).
void simd_matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& out);

// -- Quantized (int8) GEMM ---------------------------------------------------
// Row-major u8 × s8 -> int32 with per-row zero-point correction:
//
//   out[i,j] = sum_k a[i,k] * b[j,k]  -  za[i] * b_rowsum[j]
//
// a is [m,k] unsigned (asymmetric activations, zero point za[i] per row;
// za may be null for symmetric input), b is [n,k] signed (symmetric
// weights), b_rowsum[j] = sum_k b[j,k] (required when za is set; callers
// precompute it once per weight). All arithmetic is exact int32 — the AVX2
// path (mode kSimd) must equal the scalar reference bit for bit, and the
// differential harness enforces exact equality, not a tolerance. k is
// limited to 66051 (255*127*k must fit int32); checked.
void int8_gemm_nt(const std::uint8_t* a, const std::int8_t* b,
                  std::int32_t* out, std::int64_t m, std::int64_t k,
                  std::int64_t n, const std::int32_t* za,
                  const std::int32_t* b_rowsum);

// -- Reference kernels -------------------------------------------------------
// The retained naive loops that define the canonical accumulation order.
// Serial, unblocked, branch-free inner loops. The equivalence suite compares
// the tiled kernels against these bit for bit; MDL_GEMM=naive serves them
// as the public kernels (the "before" baseline for perf evidence).
namespace reference {

void matmul_acc(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& out);
void matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& out);
void matvec_acc(const Tensor& a, const Tensor& x, Tensor& out);

/// Scalar twin of int8_gemm_nt — the exact-equality oracle for the AVX2
/// quantized kernel.
void int8_gemm_nt(const std::uint8_t* a, const std::int8_t* b,
                  std::int32_t* out, std::int64_t m, std::int64_t k,
                  std::int64_t n, const std::int32_t* za,
                  const std::int32_t* b_rowsum);

}  // namespace reference

}  // namespace mdl::gemm
