#include "core/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <sstream>

#include "core/gemm.hpp"

namespace mdl {
namespace {

std::int64_t element_count(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    MDL_CHECK(d >= 0, "negative tensor extent " << d);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(element_count(shape_)), 0.0F) {}

Tensor::Tensor(std::vector<std::int64_t> shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(element_count(shape_)), fill) {}

Tensor::Tensor(std::vector<std::int64_t> shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  MDL_CHECK(static_cast<std::int64_t>(data_.size()) == element_count(shape_),
            "value count " << data_.size() << " does not match shape "
                           << shape_str());
}

Tensor Tensor::zeros(std::vector<std::int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::ones(std::vector<std::int64_t> shape) {
  return Tensor(std::move(shape), 1.0F);
}

Tensor Tensor::full(std::vector<std::int64_t> shape, float value) {
  return Tensor(std::move(shape), value);
}

Tensor Tensor::randn(std::vector<std::int64_t> shape, Rng& rng, float mean,
                     float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand(std::vector<std::int64_t> shape, Rng& rng, float lo,
                    float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  MDL_CHECK(n >= 0, "arange needs n >= 0");
  Tensor t({n});
  for (std::int64_t i = 0; i < n; ++i) t.data_[static_cast<std::size_t>(i)] =
      static_cast<float>(i);
  return t;
}

std::int64_t Tensor::shape(std::size_t dim) const {
  MDL_CHECK(dim < shape_.size(),
            "dim " << dim << " out of range for " << shape_str());
  return shape_[dim];
}

void Tensor::check_index(std::int64_t flat_index) const {
  MDL_CHECK(flat_index >= 0 && flat_index < size(),
            "index " << flat_index << " out of range for " << shape_str());
}

float& Tensor::at(std::int64_t i) {
  MDL_CHECK(ndim() == 1, "1-D access on " << shape_str());
  check_index(i);
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at(std::int64_t i) const {
  return const_cast<Tensor*>(this)->at(i);
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
  MDL_CHECK(ndim() == 2, "2-D access on " << shape_str());
  MDL_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1],
            "index (" << i << ", " << j << ") out of range for "
                      << shape_str());
  return data_[static_cast<std::size_t>(i * shape_[1] + j)];
}

float Tensor::at(std::int64_t i, std::int64_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) {
  MDL_CHECK(ndim() == 3, "3-D access on " << shape_str());
  MDL_CHECK(i >= 0 && i < shape_[0] && j >= 0 && j < shape_[1] && k >= 0 &&
                k < shape_[2],
            "index (" << i << ", " << j << ", " << k << ") out of range for "
                      << shape_str());
  return data_[static_cast<std::size_t>((i * shape_[1] + j) * shape_[2] + k)];
}

float Tensor::at(std::int64_t i, std::int64_t j, std::int64_t k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

Tensor Tensor::reshape(std::vector<std::int64_t> new_shape) const {
  std::int64_t known = 1;
  int infer_pos = -1;
  for (std::size_t d = 0; d < new_shape.size(); ++d) {
    if (new_shape[d] == -1) {
      MDL_CHECK(infer_pos < 0, "at most one extent may be -1 in reshape");
      infer_pos = static_cast<int>(d);
    } else {
      MDL_CHECK(new_shape[d] >= 0, "negative extent in reshape");
      known *= new_shape[d];
    }
  }
  if (infer_pos >= 0) {
    MDL_CHECK(known > 0 && size() % known == 0,
              "cannot infer extent: " << size() << " elements vs product "
                                      << known);
    new_shape[static_cast<std::size_t>(infer_pos)] = size() / known;
    known *= new_shape[static_cast<std::size_t>(infer_pos)];
  }
  MDL_CHECK(known == size(), "reshape from " << shape_str() << " to "
                                             << known << " elements");
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

Tensor Tensor::transposed() const {
  MDL_CHECK(ndim() == 2, "transpose requires 2-D, got " << shape_str());
  const std::int64_t r = shape_[0];
  const std::int64_t c = shape_[1];
  Tensor out({c, r});
  for (std::int64_t i = 0; i < r; ++i)
    for (std::int64_t j = 0; j < c; ++j)
      out.data_[static_cast<std::size_t>(j * r + i)] =
          data_[static_cast<std::size_t>(i * c + j)];
  return out;
}

Tensor Tensor::slice_rows(std::int64_t begin, std::int64_t end) const {
  MDL_CHECK(ndim() == 2, "slice_rows requires 2-D, got " << shape_str());
  MDL_CHECK(begin >= 0 && begin <= end && end <= shape_[0],
            "invalid row slice [" << begin << ", " << end << ") of "
                                  << shape_str());
  const std::int64_t c = shape_[1];
  Tensor out({end - begin, c});
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * c),
            data_.begin() + static_cast<std::ptrdiff_t>(end * c),
            out.data_.begin());
  return out;
}

Tensor Tensor::row(std::int64_t i) const {
  return slice_rows(i, i + 1).reshape({shape_[1]});
}

void Tensor::set_row(std::int64_t i, const Tensor& src) {
  MDL_CHECK(ndim() == 2, "set_row requires 2-D, got " << shape_str());
  MDL_CHECK(i >= 0 && i < shape_[0], "row " << i << " out of range");
  MDL_CHECK(src.size() == shape_[1],
            "row length " << src.size() << " vs " << shape_[1]);
  std::copy(src.data_.begin(), src.data_.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(i * shape_[1]));
}

Tensor Tensor::time_step(std::int64_t t) const {
  MDL_CHECK(ndim() == 3, "time_step requires 3-D, got " << shape_str());
  MDL_CHECK(t >= 0 && t < shape_[0], "time step " << t << " out of range");
  const std::int64_t plane = shape_[1] * shape_[2];
  Tensor out({shape_[1], shape_[2]});
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(t * plane),
            data_.begin() + static_cast<std::ptrdiff_t>((t + 1) * plane),
            out.data_.begin());
  return out;
}

void Tensor::set_time_step(std::int64_t t, const Tensor& src) {
  MDL_CHECK(ndim() == 3, "set_time_step requires 3-D, got " << shape_str());
  MDL_CHECK(t >= 0 && t < shape_[0], "time step " << t << " out of range");
  const std::int64_t plane = shape_[1] * shape_[2];
  MDL_CHECK(src.size() == plane, "plane size mismatch");
  std::copy(src.data_.begin(), src.data_.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(t * plane));
}

Tensor Tensor::concat_cols(std::span<const Tensor> parts) {
  MDL_CHECK(!parts.empty(), "concat_cols needs at least one tensor");
  const std::int64_t rows = parts.front().shape(0);
  std::int64_t cols = 0;
  for (const Tensor& p : parts) {
    MDL_CHECK(p.ndim() == 2 && p.shape(0) == rows,
              "concat_cols row-count mismatch");
    cols += p.shape(1);
  }
  Tensor out({rows, cols});
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t off = 0;
    for (const Tensor& p : parts) {
      const std::int64_t pc = p.shape(1);
      std::copy(p.data_.begin() + static_cast<std::ptrdiff_t>(r * pc),
                p.data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * pc),
                out.data_.begin() +
                    static_cast<std::ptrdiff_t>(r * cols + off));
      off += pc;
    }
  }
  return out;
}

Tensor Tensor::concat_rows(std::span<const Tensor> parts) {
  MDL_CHECK(!parts.empty(), "concat_rows needs at least one tensor");
  const std::int64_t cols = parts.front().shape(1);
  std::int64_t rows = 0;
  for (const Tensor& p : parts) {
    MDL_CHECK(p.ndim() == 2 && p.shape(1) == cols,
              "concat_rows column-count mismatch");
    rows += p.shape(0);
  }
  Tensor out({rows, cols});
  auto it = out.data_.begin();
  for (const Tensor& p : parts) it = std::copy(p.data_.begin(), p.data_.end(), it);
  return out;
}

Tensor& Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

#define MDL_CHECK_SAME_SHAPE(other)                                        \
  MDL_CHECK(same_shape(other), "shape mismatch: " << shape_str() << " vs " \
                                                  << (other).shape_str())

Tensor& Tensor::add_(const Tensor& other) {
  MDL_CHECK_SAME_SHAPE(other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  MDL_CHECK_SAME_SHAPE(other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  MDL_CHECK_SAME_SHAPE(other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::div_(const Tensor& other) {
  MDL_CHECK_SAME_SHAPE(other);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] /= other.data_[i];
  return *this;
}

Tensor& Tensor::add_scaled_(const Tensor& other, float alpha) {
  MDL_CHECK_SAME_SHAPE(other);
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
  return *this;
}

Tensor& Tensor::add_(float s) {
  for (auto& v : data_) v += s;
  return *this;
}

Tensor& Tensor::mul_(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
  MDL_CHECK(lo <= hi, "clamp bounds inverted");
  for (auto& v : data_) v = std::clamp(v, lo, hi);
  return *this;
}

Tensor& Tensor::apply_(const std::function<float(float)>& f) {
  for (auto& v : data_) v = f(v);
  return *this;
}

Tensor Tensor::operator+(const Tensor& other) const {
  Tensor out = *this;
  out.add_(other);
  return out;
}

Tensor Tensor::operator-(const Tensor& other) const {
  Tensor out = *this;
  out.sub_(other);
  return out;
}

Tensor Tensor::operator*(const Tensor& other) const {
  Tensor out = *this;
  out.mul_(other);
  return out;
}

Tensor Tensor::operator*(float s) const {
  Tensor out = *this;
  out.mul_(s);
  return out;
}

Tensor Tensor::operator+(float s) const {
  Tensor out = *this;
  out.add_(s);
  return out;
}

Tensor Tensor::operator-() const { return *this * -1.0F; }

double Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Tensor::mean() const {
  MDL_CHECK(!data_.empty(), "mean of empty tensor");
  return sum() / static_cast<double>(data_.size());
}

float Tensor::max() const {
  MDL_CHECK(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::min() const {
  MDL_CHECK(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

double Tensor::dot(const Tensor& other) const {
  MDL_CHECK(size() == other.size(),
            "dot size mismatch " << size() << " vs " << other.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    acc += static_cast<double>(data_[i]) * static_cast<double>(other.data_[i]);
  return acc;
}

double Tensor::norm() const { return std::sqrt(dot(*this)); }

Tensor Tensor::sum_rows() const {
  MDL_CHECK(ndim() == 2, "sum_rows requires 2-D, got " << shape_str());
  const std::int64_t r = shape_[0];
  const std::int64_t c = shape_[1];
  Tensor out({c});
  for (std::int64_t i = 0; i < r; ++i)
    for (std::int64_t j = 0; j < c; ++j)
      out.data_[static_cast<std::size_t>(j)] +=
          data_[static_cast<std::size_t>(i * c + j)];
  return out;
}

std::vector<std::int64_t> Tensor::argmax_rows() const {
  MDL_CHECK(ndim() == 2, "argmax_rows requires 2-D, got " << shape_str());
  MDL_CHECK(shape_[1] > 0, "argmax_rows on zero columns");
  std::vector<std::int64_t> out(static_cast<std::size_t>(shape_[0]));
  for (std::int64_t i = 0; i < shape_[0]; ++i) {
    const float* r = data_.data() + i * shape_[1];
    out[static_cast<std::size_t>(i)] =
        std::max_element(r, r + shape_[1]) - r;
  }
  return out;
}

std::int64_t Tensor::argmax() const {
  MDL_CHECK(!data_.empty(), "argmax of empty tensor");
  return std::max_element(data_.begin(), data_.end()) - data_.begin();
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor" << t.shape_str() << " {";
  const std::int64_t show = std::min<std::int64_t>(t.size(), 8);
  for (std::int64_t i = 0; i < show; ++i) {
    if (i) os << ", ";
    os << t[i];
  }
  if (t.size() > show) os << ", ...";
  return os << '}';
}

// The dense products below all route through mdl::gemm — blocked,
// register-tiled, thread-parallel kernels bit-identical to the retained
// naive reference at every thread count (see gemm.hpp for the accumulation
// policy and the determinism argument). MDL_GEMM=naive swaps in the
// reference loops at runtime for A/B benchmarking.

Tensor matmul(const Tensor& a, const Tensor& b) {
  MDL_CHECK(a.ndim() == 2 && b.ndim() == 2 && a.shape(1) == b.shape(0),
            "matmul shape mismatch " << a.shape_str() << " x "
                                     << b.shape_str());
  Tensor out({a.shape(0), b.shape(1)});
  matmul_acc(a, b, out);
  return out;
}

void matmul_acc(const Tensor& a, const Tensor& b, Tensor& out) {
  MDL_CHECK(a.ndim() == 2 && b.ndim() == 2 && a.shape(1) == b.shape(0),
            "matmul_acc shape mismatch " << a.shape_str() << " x "
                                         << b.shape_str());
  switch (gemm::mode()) {
    case gemm::Mode::kNaive: gemm::reference::matmul_acc(a, b, out); break;
    case gemm::Mode::kSimd: gemm::simd_matmul_acc(a, b, out); break;
    case gemm::Mode::kBlocked: gemm::tiled_matmul_acc(a, b, out); break;
  }
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  MDL_CHECK(a.ndim() == 2 && b.ndim() == 2 && a.shape(0) == b.shape(0),
            "matmul_tn shape mismatch " << a.shape_str() << " x "
                                        << b.shape_str());
  Tensor out({a.shape(1), b.shape(1)});
  // No dedicated SIMD kernel for _tn (a training-only path); kSimd falls
  // back to the blocked scalar suite.
  if (gemm::mode() == gemm::Mode::kNaive)
    gemm::reference::matmul_tn_acc(a, b, out);
  else
    gemm::tiled_matmul_tn_acc(a, b, out);
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  MDL_CHECK(a.ndim() == 2 && b.ndim() == 2 && a.shape(1) == b.shape(1),
            "matmul_nt shape mismatch " << a.shape_str() << " x "
                                        << b.shape_str());
  Tensor out({a.shape(0), b.shape(0)});
  matmul_nt_acc(a, b, out);
  return out;
}

void matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& out) {
  MDL_CHECK(a.ndim() == 2 && b.ndim() == 2 && a.shape(1) == b.shape(1),
            "matmul_nt_acc shape mismatch " << a.shape_str() << " x "
                                            << b.shape_str());
  switch (gemm::mode()) {
    case gemm::Mode::kNaive: gemm::reference::matmul_nt_acc(a, b, out); break;
    case gemm::Mode::kSimd: gemm::simd_matmul_nt_acc(a, b, out); break;
    case gemm::Mode::kBlocked: gemm::tiled_matmul_nt_acc(a, b, out); break;
  }
}

Tensor matvec(const Tensor& a, const Tensor& x) {
  MDL_CHECK(a.ndim() == 2 && x.ndim() == 1 && a.shape(1) == x.shape(0),
            "matvec shape mismatch " << a.shape_str() << " x "
                                     << x.shape_str());
  Tensor out({a.shape(0)});
  // matvec has one scalar chain per output row already; kSimd uses the
  // blocked path (vectorizing the dot would change the serve/replay chain
  // for no measured win at these widths).
  if (gemm::mode() == gemm::Mode::kNaive)
    gemm::reference::matvec_acc(a, x, out);
  else
    gemm::tiled_matvec_acc(a, x, out);
  return out;
}

void add_row_broadcast(Tensor& t, const Tensor& bias) {
  MDL_CHECK(t.ndim() == 2 && bias.ndim() == 1 && bias.shape(0) == t.shape(1),
            "bias broadcast mismatch " << t.shape_str() << " vs "
                                       << bias.shape_str());
  const std::int64_t r = t.shape(0);
  const std::int64_t c = t.shape(1);
  for (std::int64_t i = 0; i < r; ++i)
    for (std::int64_t j = 0; j < c; ++j) t[i * c + j] += bias[j];
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  MDL_CHECK(a.same_shape(b), "max_abs_diff shape mismatch");
  float m = 0.0F;
  for (std::int64_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, float tol) {
  return a.same_shape(b) && max_abs_diff(a, b) <= tol;
}

}  // namespace mdl
