#include "core/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "core/cpu_features.hpp"
#include "core/error.hpp"
#include "core/gemm_simd.hpp"
#include "core/threadpool.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace mdl::gemm {

namespace {

/// Resolved kernel mode; -1 = not yet resolved. Resolution is lazy (first
/// mode() call) rather than static-init so an invalid MDL_GEMM value can
/// throw a catchable mdl::Error instead of terminating before main().
std::atomic<int> g_mode{-1};

/// The probe/override outcome is logged through mdl::obs exactly once per
/// process, no matter how often the mode is re-resolved or overridden.
std::once_flag g_log_once;

void log_selection(Mode m, bool from_env) {
  std::call_once(g_log_once, [&] {
    const char* name = mode_name(m);
    MDL_OBS_COUNTER_ADD(std::string("gemm.kernel.") + name, 1);
    MDL_OBS_RING_EVENT(obs::EventType::kInstant, "gemm.dispatch", 0,
                       from_env ? "override" : "probe", 1.0, "kernel", name);
    (void)name;
    (void)from_env;
  });
}

// Micro kernel, one C row: crow[j0..j1) += sum_{kk in [k0,k1)} A[i,kk]*B[kk,j].
// K is unrolled by 4 with one explicit scalar chain per j so the compiler
// vectorizes across j; each output element still receives its terms in
// ascending-k order, one multiply-add per term (the canonical chain).
inline void micro_1row(const float* arow, const float* pb, float* crow,
                       std::int64_t k0, std::int64_t k1, std::int64_t j0,
                       std::int64_t j1, std::int64_t n) {
  std::int64_t kk = k0;
  for (; kk + 4 <= k1; kk += 4) {
    const float a0 = arow[kk];
    const float a1 = arow[kk + 1];
    const float a2 = arow[kk + 2];
    const float a3 = arow[kk + 3];
    const float* b0 = pb + kk * n;
    const float* b1 = b0 + n;
    const float* b2 = b1 + n;
    const float* b3 = b2 + n;
    for (std::int64_t j = j0; j < j1; ++j) {
      float cj = crow[j];
      cj += a0 * b0[j];
      cj += a1 * b1[j];
      cj += a2 * b2[j];
      cj += a3 * b3[j];
      crow[j] = cj;
    }
  }
  for (; kk < k1; ++kk) {
    const float a0 = arow[kk];
    const float* b0 = pb + kk * n;
    for (std::int64_t j = j0; j < j1; ++j) crow[j] += a0 * b0[j];
  }
}

// Register tile of two C rows: shares the four B row loads across both
// rows. Each row's accumulation chain is independent and identical to the
// one-row kernel's.
inline void micro_2row(const float* arow0, const float* arow1, const float* pb,
                       float* crow0, float* crow1, std::int64_t k0,
                       std::int64_t k1, std::int64_t j0, std::int64_t j1,
                       std::int64_t n) {
  std::int64_t kk = k0;
  for (; kk + 4 <= k1; kk += 4) {
    const float a00 = arow0[kk];
    const float a01 = arow0[kk + 1];
    const float a02 = arow0[kk + 2];
    const float a03 = arow0[kk + 3];
    const float a10 = arow1[kk];
    const float a11 = arow1[kk + 1];
    const float a12 = arow1[kk + 2];
    const float a13 = arow1[kk + 3];
    const float* b0 = pb + kk * n;
    const float* b1 = b0 + n;
    const float* b2 = b1 + n;
    const float* b3 = b2 + n;
    for (std::int64_t j = j0; j < j1; ++j) {
      const float bj0 = b0[j];
      const float bj1 = b1[j];
      const float bj2 = b2[j];
      const float bj3 = b3[j];
      float c0 = crow0[j];
      c0 += a00 * bj0;
      c0 += a01 * bj1;
      c0 += a02 * bj2;
      c0 += a03 * bj3;
      crow0[j] = c0;
      float c1 = crow1[j];
      c1 += a10 * bj0;
      c1 += a11 * bj1;
      c1 += a12 * bj2;
      c1 += a13 * bj3;
      crow1[j] = c1;
    }
  }
  for (; kk < k1; ++kk) {
    const float a0 = arow0[kk];
    const float a1 = arow1[kk];
    const float* b0 = pb + kk * n;
    for (std::int64_t j = j0; j < j1; ++j) {
      const float bj = b0[j];
      crow0[j] += a0 * bj;
      crow1[j] += a1 * bj;
    }
  }
}

// Blocked macro kernel over a row slab [r0, r1) of C += A @ B. k-blocks run
// outermost and ascending, so every element's terms still arrive in
// ascending-k order; the j-blocking only reorders work *across* elements.
void gemm_rows(const float* pa, const float* pb, float* po, std::int64_t r0,
               std::int64_t r1, std::int64_t k, std::int64_t n) {
  for (std::int64_t k0 = 0; k0 < k; k0 += kKc) {
    const std::int64_t k1 = std::min(k, k0 + kKc);
    for (std::int64_t j0 = 0; j0 < n; j0 += kNc) {
      const std::int64_t j1 = std::min(n, j0 + kNc);
      std::int64_t i = r0;
      for (; i + 2 <= r1; i += 2)
        micro_2row(pa + i * k, pa + (i + 1) * k, pb, po + i * n,
                   po + (i + 1) * n, k0, k1, j0, j1, n);
      if (i < r1)
        micro_1row(pa + i * k, pb, po + i * n, k0, k1, j0, j1, n);
    }
  }
}

// C += A @ B on raw row-major buffers, with threshold dispatch: tiny shapes
// run a direct loop (no blocking/dispatch overhead on GRU-step latency),
// mid shapes run the blocked kernel on the calling thread, large shapes
// shard row panels across the shared pool. All three paths produce the same
// per-element accumulation chain, so the choice never changes the bits.
void gemm_dispatch(const float* pa, const float* pb, float* po, std::int64_t m,
                   std::int64_t k, std::int64_t n) {
  const std::int64_t flops = 2 * m * k * n;
  if (flops < kBlockFlopThreshold) {
    for (std::int64_t i = 0; i < m; ++i)
      micro_1row(pa + i * k, pb, po + i * n, 0, k, 0, n, n);
    return;
  }
  const std::int64_t panels = (m + kPanelRows - 1) / kPanelRows;
  ThreadPool* pool =
      flops >= kParallelFlopThreshold && panels > 1 ? shared_pool() : nullptr;
  if (pool == nullptr) {
    MDL_OBS_COUNTER_ADD("gemm.blocked_calls", 1);
    gemm_rows(pa, pb, po, 0, m, k, n);
    return;
  }
  MDL_OBS_COUNTER_ADD("gemm.parallel_calls", 1);
  parallel_for(pool, static_cast<std::size_t>(panels), [&](std::size_t p) {
    const std::int64_t row0 = static_cast<std::int64_t>(p) * kPanelRows;
    const std::int64_t row1 = std::min(m, row0 + kPanelRows);
    gemm_rows(pa, pb, po, row0, row1, k, n);
  });
}

// Exact element copies, so transposed operands can reuse the one blocked
// kernel without perturbing any accumulation chain.
std::vector<float> pack_transpose(const float* src, std::int64_t rows,
                                  std::int64_t cols) {
  std::vector<float> dst(static_cast<std::size_t>(rows * cols));
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c) dst[c * rows + r] = src[r * cols + c];
  return dst;
}

void check_matmul_shapes(const Tensor& a, const Tensor& b, const Tensor& out,
                         std::int64_t m, std::int64_t k, std::int64_t n,
                         const char* name) {
  MDL_CHECK(a.ndim() == 2 && b.ndim() == 2 && out.ndim() == 2 &&
                out.shape(0) == m && out.shape(1) == n,
            "" << name << " shape mismatch " << a.shape_str() << " x "
               << b.shape_str() << " -> " << out.shape_str());
  (void)k;
}

}  // namespace

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kNaive: return "naive";
    case Mode::kBlocked: return "blocked";
    case Mode::kSimd: return "simd";
  }
  return "unknown";
}

Mode parse_mode(const std::string& value) {
  if (value == "naive") return Mode::kNaive;
  if (value == "blocked" || value == "tiled") return Mode::kBlocked;
  if (value == "simd") {
    MDL_CHECK(cpu::simd_gemm_supported(),
              "MDL_GEMM=simd requested but this "
                  << (gemm::simd::compiled() ? "CPU lacks AVX2/FMA"
                                             : "build has no AVX2 kernels"));
    return Mode::kSimd;
  }
  MDL_FAIL("unknown MDL_GEMM value `" << value
                                      << "` (expected naive, blocked, "
                                         "or simd)");
}

Mode resolve_mode(const char* env_value) {
  if (env_value != nullptr && *env_value != '\0') {
    const Mode m = parse_mode(env_value);
    log_selection(m, /*from_env=*/true);
    return m;
  }
  const Mode m =
      cpu::simd_gemm_supported() ? Mode::kSimd : Mode::kBlocked;
  log_selection(m, /*from_env=*/false);
  return m;
}

Mode mode() {
  const int m = g_mode.load(std::memory_order_relaxed);
  if (m >= 0) return static_cast<Mode>(m);
  // First use: resolve from MDL_GEMM / CPUID. Concurrent first calls race
  // benignly — both resolve to the same answer (env and CPUID are stable)
  // and the obs log is once-guarded.
  const Mode resolved = resolve_mode(std::getenv("MDL_GEMM"));
  g_mode.store(static_cast<int>(resolved), std::memory_order_relaxed);
  return resolved;
}

void set_mode(Mode m) {
  g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

const char* kernel_name() { return mode_name(mode()); }

void tiled_matmul_acc(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::int64_t m = a.shape(0);
  const std::int64_t k = a.shape(1);
  const std::int64_t n = b.shape(1);
  MDL_CHECK(b.shape(0) == k, "matmul_acc inner dimension mismatch");
  check_matmul_shapes(a, b, out, m, k, n, "matmul_acc");
  gemm_dispatch(a.data(), b.data(), out.data(), m, k, n);
}

void tiled_matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::int64_t k = a.shape(0);
  const std::int64_t m = a.shape(1);
  const std::int64_t n = b.shape(1);
  MDL_CHECK(b.shape(0) == k, "matmul_tn inner dimension mismatch");
  check_matmul_shapes(a, b, out, m, k, n, "matmul_tn");
  if (2 * m * k * n < kBlockFlopThreshold) {
    // Tiny shapes: direct kk-outer loop, no transpose packing (the pack
    // allocation dominates GRU/LSTM-step latency). Per element the terms
    // still arrive in ascending-k order — same chain as the packed path.
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* arow = pa + kk * m;
      const float* brow = pb + kk * n;
      for (std::int64_t i = 0; i < m; ++i) {
        const float aik = arow[i];
        float* crow = po + i * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
    return;
  }
  const std::vector<float> at = pack_transpose(a.data(), k, m);
  gemm_dispatch(at.data(), b.data(), out.data(), m, k, n);
}

void tiled_matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::int64_t m = a.shape(0);
  const std::int64_t k = a.shape(1);
  const std::int64_t n = b.shape(0);
  MDL_CHECK(b.shape(1) == k, "matmul_nt inner dimension mismatch");
  check_matmul_shapes(a, b, out, m, k, n, "matmul_nt");
  if (2 * m * k * n < kBlockFlopThreshold) {
    // Tiny shapes: both operands are row-major along k, so the dot form is
    // already cache-friendly — skip the transpose packing entirely. One
    // scalar chain per element, ascending k: identical bits.
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    for (std::int64_t i = 0; i < m; ++i) {
      const float* arow = pa + i * k;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        float acc = po[i * n + j];
        for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        po[i * n + j] = acc;
      }
    }
    return;
  }
  const std::vector<float> bt = pack_transpose(b.data(), n, k);
  gemm_dispatch(a.data(), bt.data(), out.data(), m, k, n);
}

void tiled_matvec_acc(const Tensor& a, const Tensor& x, Tensor& out) {
  const std::int64_t m = a.shape(0);
  const std::int64_t k = a.shape(1);
  MDL_CHECK(a.ndim() == 2 && x.ndim() == 1 && x.shape(0) == k &&
                out.ndim() == 1 && out.shape(0) == m,
            "matvec shape mismatch " << a.shape_str() << " x "
                                     << x.shape_str());
  const float* pa = a.data();
  const float* px = x.data();
  float* po = out.data();
  // One dot product per row: a single scalar chain per output element, so
  // row sharding is trivially exact.
  const auto rows = [&](std::int64_t row0, std::int64_t row1) {
    for (std::int64_t i = row0; i < row1; ++i) {
      const float* arow = pa + i * k;
      float acc = po[i];
      for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * px[kk];
      po[i] = acc;
    }
  };
  const std::int64_t flops = 2 * m * k;
  const std::int64_t panels = (m + kPanelRows - 1) / kPanelRows;
  ThreadPool* pool =
      flops >= kParallelFlopThreshold && panels > 1 ? shared_pool() : nullptr;
  if (pool == nullptr) {
    rows(0, m);
    return;
  }
  parallel_for(pool, static_cast<std::size_t>(panels), [&](std::size_t p) {
    const std::int64_t row0 = static_cast<std::int64_t>(p) * kPanelRows;
    rows(row0, std::min(m, row0 + kPanelRows));
  });
}

namespace {

/// Shards [0, m) row panels of `body(row0, row1)` across the shared pool
/// when `flops` clears the parallel threshold; otherwise runs inline. Used
/// by the SIMD and int8 paths — rows are independent in every kernel here,
/// so sharding never touches the arithmetic.
template <typename Body>
void shard_rows(std::int64_t m, std::int64_t flops, const Body& body) {
  const std::int64_t panels = (m + kPanelRows - 1) / kPanelRows;
  ThreadPool* pool =
      flops >= kParallelFlopThreshold && panels > 1 ? shared_pool() : nullptr;
  if (pool == nullptr) {
    body(0, m);
    return;
  }
  parallel_for(pool, static_cast<std::size_t>(panels), [&](std::size_t p) {
    const std::int64_t row0 = static_cast<std::int64_t>(p) * kPanelRows;
    body(row0, std::min(m, row0 + kPanelRows));
  });
}

}  // namespace

void simd_matmul_acc(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::int64_t m = a.shape(0);
  const std::int64_t k = a.shape(1);
  const std::int64_t n = b.shape(1);
  MDL_CHECK(b.shape(0) == k, "matmul_acc inner dimension mismatch");
  check_matmul_shapes(a, b, out, m, k, n, "matmul_acc");
  MDL_OBS_COUNTER_ADD("gemm.simd_calls", 1);
  // No small-shape scalar fallback: the SIMD chain must be the chain for
  // every shape, or a row's bits would depend on the batch it rides in.
  shard_rows(m, 2 * m * k * n, [&](std::int64_t r0, std::int64_t r1) {
    simd::avx2_gemm_rows(a.data(), b.data(), out.data(), r0, r1, k, n);
  });
}

void simd_matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::int64_t m = a.shape(0);
  const std::int64_t k = a.shape(1);
  const std::int64_t n = b.shape(0);
  MDL_CHECK(b.shape(1) == k, "matmul_nt inner dimension mismatch");
  check_matmul_shapes(a, b, out, m, k, n, "matmul_nt");
  MDL_OBS_COUNTER_ADD("gemm.simd_calls", 1);
  shard_rows(m, 2 * m * k * n, [&](std::int64_t r0, std::int64_t r1) {
    simd::avx2_gemm_nt_rows(a.data(), b.data(), out.data(), r0, r1, k, n);
  });
}

/// Max k for the int8 kernels: 255*127*k must stay below INT32_MAX so the
/// exact int32 accumulator cannot overflow.
static constexpr std::int64_t kInt8MaxK = 66051;

void int8_gemm_nt(const std::uint8_t* a, const std::int8_t* b,
                  std::int32_t* out, std::int64_t m, std::int64_t k,
                  std::int64_t n, const std::int32_t* za,
                  const std::int32_t* b_rowsum) {
  MDL_CHECK(k >= 0 && k <= kInt8MaxK,
            "int8_gemm_nt k=" << k << " exceeds the int32-exact bound "
                              << kInt8MaxK);
  MDL_CHECK(za == nullptr || b_rowsum != nullptr,
            "int8_gemm_nt needs b_rowsum when zero points are supplied");
  const bool use_simd = mode() == Mode::kSimd;
  shard_rows(m, 2 * m * k * n, [&](std::int64_t r0, std::int64_t r1) {
    if (use_simd) {
      simd::avx2_int8_gemm_nt_rows(a, b, out, r0, r1, k, n, za, b_rowsum);
      return;
    }
    for (std::int64_t i = r0; i < r1; ++i) {
      const std::uint8_t* arow = a + i * k;
      std::int32_t* crow = out + i * n;
      const std::int32_t zai = za != nullptr ? za[i] : 0;
      for (std::int64_t j = 0; j < n; ++j) {
        const std::int8_t* brow = b + j * k;
        std::int32_t acc = 0;
        for (std::int64_t kk = 0; kk < k; ++kk)
          acc += static_cast<std::int32_t>(arow[kk]) *
                 static_cast<std::int32_t>(brow[kk]);
        if (za != nullptr) acc -= zai * b_rowsum[j];
        crow[j] = acc;
      }
    }
  });
}

namespace reference {

void matmul_acc(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::int64_t m = a.shape(0);
  const std::int64_t k = a.shape(1);
  const std::int64_t n = b.shape(1);
  MDL_CHECK(b.shape(0) == k, "matmul_acc inner dimension mismatch");
  check_matmul_shapes(a, b, out, m, k, n, "matmul_acc");
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // i-k-j loop order: streams through B and C rows, cache friendly. No
  // zero-skip branch — sparse weights go through compress::pruned_matmul.
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = po + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      const float* brow = pb + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::int64_t k = a.shape(0);
  const std::int64_t m = a.shape(1);
  const std::int64_t n = b.shape(1);
  MDL_CHECK(b.shape(0) == k, "matmul_tn inner dimension mismatch");
  check_matmul_shapes(a, b, out, m, k, n, "matmul_tn");
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // kk-outer order streams A and B rows; per output element the terms
  // still arrive in ascending-k order, so this matches the i-k-j chain.
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float aik = arow[i];
      float* crow = po + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void matmul_nt_acc(const Tensor& a, const Tensor& b, Tensor& out) {
  const std::int64_t m = a.shape(0);
  const std::int64_t k = a.shape(1);
  const std::int64_t n = b.shape(0);
  MDL_CHECK(b.shape(1) == k, "matmul_nt inner dimension mismatch");
  check_matmul_shapes(a, b, out, m, k, n, "matmul_nt");
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = po[i * n + j];
      for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      po[i * n + j] = acc;
    }
  }
}

void matvec_acc(const Tensor& a, const Tensor& x, Tensor& out) {
  const std::int64_t m = a.shape(0);
  const std::int64_t k = a.shape(1);
  MDL_CHECK(a.ndim() == 2 && x.ndim() == 1 && x.shape(0) == k &&
                out.ndim() == 1 && out.shape(0) == m,
            "matvec shape mismatch " << a.shape_str() << " x "
                                     << x.shape_str());
  const float* pa = a.data();
  const float* px = x.data();
  float* po = out.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float acc = po[i];
    for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * px[kk];
    po[i] = acc;
  }
}

void int8_gemm_nt(const std::uint8_t* a, const std::int8_t* b,
                  std::int32_t* out, std::int64_t m, std::int64_t k,
                  std::int64_t n, const std::int32_t* za,
                  const std::int32_t* b_rowsum) {
  MDL_CHECK(za == nullptr || b_rowsum != nullptr,
            "int8_gemm_nt needs b_rowsum when zero points are supplied");
  for (std::int64_t i = 0; i < m; ++i) {
    const std::uint8_t* arow = a + i * k;
    std::int32_t* crow = out + i * n;
    const std::int32_t zai = za != nullptr ? za[i] : 0;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int8_t* brow = b + j * k;
      std::int32_t acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk)
        acc += static_cast<std::int32_t>(arow[kk]) *
               static_cast<std::int32_t>(brow[kk]);
      if (za != nullptr) acc -= zai * b_rowsum[j];
      crow[j] = acc;
    }
  }
}

}  // namespace reference

}  // namespace mdl::gemm
