// Portable binary serialization for model checkpoints and compressed
// artifacts.
//
// The format is little-endian, tagged with a magic + version header per
// archive. Writers/readers operate on std::ostream/std::istream so the same
// code serves files, string buffers (tests), and in-memory transport in the
// federated simulator. All mobiledl checkpoint/compression formats build on
// these primitives so storage accounting in the compression benches is
// exact: `BinaryWriter::bytes_written()` is the deployable artifact size.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/tensor.hpp"

namespace mdl {

/// Streaming little-endian writer with byte accounting.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}

  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_bytes(const void* data, std::size_t n);
  void write_string(const std::string& s);
  void write_tensor(const Tensor& t);
  void write_f32_vector(const std::vector<float>& v);
  void write_u32_vector(const std::vector<std::uint32_t>& v);

  /// Total bytes emitted so far.
  std::uint64_t bytes_written() const { return bytes_; }

 private:
  std::ostream& os_;
  std::uint64_t bytes_ = 0;
};

/// Streaming little-endian reader; throws mdl::Error on truncated input.
/// Length-prefixed reads (string/tensor/vector) validate the stored length
/// against the bytes actually remaining in the stream *before* allocating,
/// so a corrupt length field throws a clean mdl::Error instead of
/// attempting a multi-GB allocation.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is) : is_(is) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  void read_bytes(void* data, std::size_t n);
  std::string read_string();
  Tensor read_tensor();
  std::vector<float> read_f32_vector();
  std::vector<std::uint32_t> read_u32_vector();

  /// Bytes between the cursor and end-of-stream; nullopt when the stream is
  /// not seekable (then length validation degrades to plausibility caps).
  std::optional<std::uint64_t> bytes_remaining();

 private:
  /// Throws unless `need` bytes (a `what` field) remain in the stream.
  void check_remaining(std::uint64_t need, const char* what);

  std::istream& is_;
};

/// Writes the archive header (magic "MDL1" + format version).
void write_archive_header(BinaryWriter& w, std::uint32_t version);
/// Reads and validates the archive header, returning the format version.
std::uint32_t read_archive_header(BinaryReader& r);

}  // namespace mdl
