#include "core/cpu_features.hpp"

namespace mdl::cpu {

namespace {

Features probe() {
  Features f;
#if defined(__x86_64__) || defined(__i386__)
  // GCC/Clang builtin CPUID wrappers; __builtin_cpu_supports consults a
  // table initialized before main(), so this is cheap and signal-safe.
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
#endif
  return f;
}

}  // namespace

const Features& features() {
  static const Features f = probe();
  return f;
}

bool simd_gemm_supported() {
#ifdef MDL_HAVE_AVX2
  return features().avx2 && features().fma;
#else
  return false;
#endif
}

const char* isa_name() { return simd_gemm_supported() ? "avx2" : "scalar"; }

}  // namespace mdl::cpu
