#include "core/serialize.hpp"

#include <bit>
#include <cstring>

namespace mdl {
namespace {

constexpr std::uint32_t kMagic = 0x314C444DU;  // "MDL1" little-endian

static_assert(std::endian::native == std::endian::little,
              "mobiledl serialization assumes a little-endian host");

}  // namespace

void BinaryWriter::write_bytes(const void* data, std::size_t n) {
  os_.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(n));
  MDL_CHECK(os_.good(), "stream write of " << n << " bytes failed");
  bytes_ += n;
}

void BinaryWriter::write_u8(std::uint8_t v) { write_bytes(&v, sizeof v); }
void BinaryWriter::write_u32(std::uint32_t v) { write_bytes(&v, sizeof v); }
void BinaryWriter::write_u64(std::uint64_t v) { write_bytes(&v, sizeof v); }
void BinaryWriter::write_i64(std::int64_t v) { write_bytes(&v, sizeof v); }
void BinaryWriter::write_f32(float v) { write_bytes(&v, sizeof v); }
void BinaryWriter::write_f64(double v) { write_bytes(&v, sizeof v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  write_bytes(s.data(), s.size());
}

void BinaryWriter::write_tensor(const Tensor& t) {
  write_u32(static_cast<std::uint32_t>(t.ndim()));
  for (std::size_t d = 0; d < t.ndim(); ++d)
    write_i64(t.shape(d));
  write_bytes(t.data(), static_cast<std::size_t>(t.size()) * sizeof(float));
}

void BinaryWriter::write_f32_vector(const std::vector<float>& v) {
  write_u64(v.size());
  write_bytes(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::write_u32_vector(const std::vector<std::uint32_t>& v) {
  write_u64(v.size());
  write_bytes(v.data(), v.size() * sizeof(std::uint32_t));
}

std::optional<std::uint64_t> BinaryReader::bytes_remaining() {
  const std::istream::pos_type cur = is_.tellg();
  if (cur == std::istream::pos_type(-1)) return std::nullopt;
  is_.seekg(0, std::ios::end);
  const std::istream::pos_type end = is_.tellg();
  is_.seekg(cur);
  if (end == std::istream::pos_type(-1) || end < cur) return std::nullopt;
  return static_cast<std::uint64_t>(end - cur);
}

void BinaryReader::check_remaining(std::uint64_t need, const char* what) {
  const std::optional<std::uint64_t> remaining = bytes_remaining();
  if (!remaining.has_value()) return;  // non-seekable stream
  MDL_CHECK(need <= *remaining,
            "corrupt archive: " << what << " wants " << need
                                << " bytes but only " << *remaining
                                << " remain in the stream");
}

void BinaryReader::read_bytes(void* data, std::size_t n) {
  is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  MDL_CHECK(is_.gcount() == static_cast<std::streamsize>(n),
            "truncated archive: wanted " << n << " bytes, got "
                                         << is_.gcount());
}

std::uint8_t BinaryReader::read_u8() {
  std::uint8_t v;
  read_bytes(&v, sizeof v);
  return v;
}

std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v;
  read_bytes(&v, sizeof v);
  return v;
}

std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v;
  read_bytes(&v, sizeof v);
  return v;
}

std::int64_t BinaryReader::read_i64() {
  std::int64_t v;
  read_bytes(&v, sizeof v);
  return v;
}

float BinaryReader::read_f32() {
  float v;
  read_bytes(&v, sizeof v);
  return v;
}

double BinaryReader::read_f64() {
  double v;
  read_bytes(&v, sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  MDL_CHECK(n < (1ULL << 32), "implausible string length " << n);
  check_remaining(n, "string body");
  std::string s(n, '\0');
  read_bytes(s.data(), n);
  return s;
}

Tensor BinaryReader::read_tensor() {
  const std::uint32_t nd = read_u32();
  MDL_CHECK(nd <= 8, "implausible tensor rank " << nd);
  std::vector<std::int64_t> shape(nd);
  std::uint64_t elems = 1;
  for (auto& d : shape) {
    d = read_i64();
    MDL_CHECK(d >= 0, "negative tensor dimension " << d);
    MDL_CHECK(d == 0 || elems <= (1ULL << 40) / static_cast<std::uint64_t>(d),
              "implausible tensor element count");
    elems *= static_cast<std::uint64_t>(d);
  }
  check_remaining(elems * sizeof(float), "tensor data");
  Tensor t(shape);
  read_bytes(t.data(), static_cast<std::size_t>(t.size()) * sizeof(float));
  return t;
}

std::vector<float> BinaryReader::read_f32_vector() {
  const std::uint64_t n = read_u64();
  MDL_CHECK(n < (1ULL << 32), "implausible vector length " << n);
  check_remaining(n * sizeof(float), "f32 vector");
  std::vector<float> v(n);
  read_bytes(v.data(), n * sizeof(float));
  return v;
}

std::vector<std::uint32_t> BinaryReader::read_u32_vector() {
  const std::uint64_t n = read_u64();
  MDL_CHECK(n < (1ULL << 32), "implausible vector length " << n);
  check_remaining(n * sizeof(std::uint32_t), "u32 vector");
  std::vector<std::uint32_t> v(n);
  read_bytes(v.data(), n * sizeof(std::uint32_t));
  return v;
}

void write_archive_header(BinaryWriter& w, std::uint32_t version) {
  w.write_u32(kMagic);
  w.write_u32(version);
}

std::uint32_t read_archive_header(BinaryReader& r) {
  const std::uint32_t magic = r.read_u32();
  MDL_CHECK(magic == kMagic, "bad archive magic 0x" << std::hex << magic);
  return r.read_u32();
}

}  // namespace mdl
