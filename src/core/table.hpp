// Aligned-table formatting for the benchmark harnesses.
//
// Every experiment bench prints the rows/series of its paper table or figure
// through TablePrinter so output across benches is uniform and diff-able.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mdl {

/// Collects string/number cells and prints a column-aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Starts a new row; values are appended with add().
  TablePrinter& begin_row();
  TablePrinter& add(const std::string& cell);
  TablePrinter& add(double value, int precision = 4);
  TablePrinter& add(std::int64_t value);
  /// Formats value as a percentage with the given precision ("93.21%").
  TablePrinter& add_percent(double fraction, int precision = 2);

  /// Writes the table, column-aligned, with a header separator.
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a byte count as a human-readable string ("12.4 KiB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace mdl
