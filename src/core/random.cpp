#include "core/random.hpp"

#include <algorithm>
#include <numeric>

#include "core/serialize.hpp"

namespace mdl {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork() { return Rng(next_u64()); }

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MDL_CHECK(lo <= hi, "invalid uniform range [" << lo << ", " << hi << ")");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t n) {
  MDL_CHECK(n > 0, "uniform_int requires n > 0, got " << n);
  // Rejection sampling to avoid modulo bias.
  const auto un = static_cast<std::uint64_t>(n);
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  std::uint64_t r = next_u64();
  while (r >= limit) r = next_u64();
  return static_cast<std::int64_t>(r % un);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep log finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::laplace(double scale) {
  MDL_CHECK(scale >= 0.0, "laplace scale must be >= 0, got " << scale);
  const double u = uniform() - 0.5;
  return -scale * std::copysign(std::log(1.0 - 2.0 * std::abs(u)), u);
}

double Rng::exponential(double rate) {
  MDL_CHECK(rate > 0.0, "exponential rate must be > 0, got " << rate);
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::gamma(double shape) {
  MDL_CHECK(shape > 0.0, "gamma shape must be > 0, got " << shape);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

std::vector<double> Rng::dirichlet(std::size_t k, double alpha) {
  MDL_CHECK(k > 0, "dirichlet needs k > 0");
  MDL_CHECK(alpha > 0.0, "dirichlet concentration must be > 0");
  std::vector<double> out(k);
  double sum = 0.0;
  for (auto& v : out) {
    v = gamma(alpha);
    sum += v;
  }
  if (sum <= 0.0) {
    std::fill(out.begin(), out.end(), 1.0 / static_cast<double>(k));
    return out;
  }
  for (auto& v : out) v /= sum;
  return out;
}

std::size_t Rng::categorical(std::span<const double> weights) {
  MDL_CHECK(!weights.empty(), "categorical needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    MDL_CHECK(w >= 0.0, "categorical weight must be >= 0, got " << w);
    total += w;
  }
  MDL_CHECK(total > 0.0, "categorical weights sum to zero");
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  MDL_CHECK(k <= n, "cannot sample " << k << " distinct items from " << n);
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(n - i))) + i;
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  shuffle(idx);
  return idx;
}

void Rng::serialize(BinaryWriter& w) const {
  for (const std::uint64_t word : s_) w.write_u64(word);
  w.write_u8(has_cached_normal_ ? 1 : 0);
  w.write_f64(cached_normal_);
}

Rng Rng::deserialize(BinaryReader& r) {
  Rng rng(0);
  for (auto& word : rng.s_) word = r.read_u64();
  MDL_CHECK((rng.s_[0] | rng.s_[1] | rng.s_[2] | rng.s_[3]) != 0,
            "corrupt Rng state: all-zero xoshiro words");
  rng.has_cached_normal_ = r.read_u8() != 0;
  rng.cached_normal_ = r.read_f64();
  return rng;
}

}  // namespace mdl
