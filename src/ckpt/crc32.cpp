#include "ckpt/crc32.hpp"

#include <array>

namespace mdl::ckpt {
namespace {

constexpr std::uint32_t kPoly = 0xEDB88320U;

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1U) ? kPoly ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFU;
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ p[i]) & 0xFFU] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFU;
}

std::uint32_t crc32(const void* data, std::size_t n) {
  return crc32_update(0, data, n);
}

}  // namespace mdl::ckpt
