// Numerical-health monitoring for long-running trainers.
//
// Mobile-fleet training jobs (FedAvg/DP-SGD, §II) run for hundreds of
// rounds unattended; a NaN that sneaks into the global model, or a loss
// that blows past its recent history, silently poisons every subsequent
// round. HealthMonitor watches both signals each round: non-finite values
// in the loss or the flattened parameter vector, and loss divergence
// against an exponential moving average guardband. The trainers react to a
// tripped guard by rolling back to the last-good checkpoint (see
// ckpt::TrainerGuard) instead of corrupting the global model.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

namespace mdl::ckpt {

/// What the monitor concluded about one round.
enum class Health : std::uint8_t {
  kOk,         ///< finite and inside the guardband
  kNonFinite,  ///< NaN/Inf in the loss or parameters
  kDiverged,   ///< loss exceeded the running-average guardband
};

const char* to_string(Health h);

/// Guardband knobs. Defaults are deliberately loose: a healthy run should
/// never trip them, only genuine divergence should.
struct HealthConfig {
  bool enabled = true;
  /// Trip when loss > ema * divergence_factor + divergence_slack.
  double divergence_factor = 4.0;
  /// Absolute slack so near-zero losses cannot trip on noise.
  double divergence_slack = 1.0;
  /// EMA observations required before the divergence guard arms.
  std::int64_t warmup_rounds = 5;
  /// EMA smoothing: ema += alpha * (loss - ema).
  double ema_alpha = 0.3;
  /// Learning-rate multiplier applied by the trainer after a rollback
  /// (1.0 = retry at the same rate; the replay then only differs through
  /// injected noise, so <1.0 is strongly recommended).
  double lr_decay_on_rollback = 0.5;
  /// Rollbacks tolerated before the trainer gives up and stops at the
  /// last-good model.
  std::int64_t max_rollbacks = 3;
};

/// Scans per-round loss/parameters; emits health.* metrics on trips.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config = {});

  /// Checks one round. `loss` may be nullopt (e.g. quorum-aborted rounds
  /// with no meaningful loss) — then only the parameter scan runs. A kOk
  /// result folds the loss into the running average.
  Health check(std::optional<double> loss, std::span<const float> params);

  /// Forgets the loss baseline (called after a rollback so the guard
  /// re-warms against the post-rollback trajectory).
  void reset();

  const HealthConfig& config() const { return config_; }
  double loss_ema() const { return ema_; }

 private:
  HealthConfig config_;
  double ema_ = 0.0;
  std::int64_t observed_ = 0;
};

}  // namespace mdl::ckpt
