// Crash-safe rotating checkpoints + the per-trainer robustness harness.
//
// CheckpointManager owns one directory of `ckpt.<round>` archives plus a
// MANIFEST (itself a CRC-framed archive listing the retained rounds). Every
// write is atomic (temp + fsync + rename), so a SIGKILL at any instant
// leaves the directory with a loadable prefix of history. load_latest()
// walks newest→oldest, skipping anything whose CRC or framing fails —
// the automatic last-good fallback — and only gives up when no retained
// checkpoint verifies.
//
// TrainerGuard bundles the manager with a HealthMonitor and an in-memory
// last-good snapshot into the round-loop protocol every trainer shares:
//   begin()        — resume from disk if asked, else snapshot round 0
//   end_of_round() — health-check, snapshot/persist when healthy, or roll
//                    back to the last-good state when tripped
// State travels as opaque payload callbacks, so the guard works for any
// trainer that can serialize itself (model, optimizer state, RNG, privacy
// budget, ...) through core/serialize.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/archive.hpp"
#include "ckpt/health.hpp"

namespace mdl::ckpt {

/// Where/how often a trainer checkpoints. An empty `dir` disables disk
/// checkpoints (health rollback still works from the in-memory snapshot).
struct CheckpointConfig {
  std::string dir;
  /// Persist every N-th healthy round (1 = every round).
  std::int64_t every_n_rounds = 1;
  /// Retained `ckpt.<round>` files; older ones are pruned after each save.
  std::int64_t keep = 3;
  /// Restore the newest verifiable checkpoint before training.
  bool resume = false;
  /// Store `ckpt.<round>` payloads as BlockCodec streams (archive format
  /// v2). Readers auto-detect the version, so flipping this between runs —
  /// including across a resume — is always safe.
  bool compress = false;
};

/// Rotating `ckpt.<round>` + MANIFEST scheme over one directory.
class CheckpointManager {
 public:
  /// Creates `config.dir` (and parents) if missing. Throws on bad config.
  explicit CheckpointManager(CheckpointConfig config);

  /// Atomically writes `ckpt.<round>`, refreshes MANIFEST, prunes beyond
  /// config.keep.
  void save(std::int64_t round, const PayloadWriter& payload);

  /// Loads the newest checkpoint that verifies, skipping corrupt/truncated
  /// ones (each skip bumps ckpt.corrupt_skipped). Returns its round, or
  /// nullopt when nothing loadable exists.
  std::optional<std::int64_t> load_latest(const PayloadReader& payload) const;

  /// Rounds with a retained checkpoint file, ascending. Prefers MANIFEST;
  /// falls back to a directory scan when it is missing or corrupt.
  std::vector<std::int64_t> list_rounds() const;

  const CheckpointConfig& config() const { return config_; }
  std::string path_for_round(std::int64_t round) const;

 private:
  void write_manifest(const std::vector<std::int64_t>& rounds) const;

  CheckpointConfig config_;
};

/// Round-loop robustness protocol shared by all trainers (see file
/// comment). Owns the optional CheckpointManager, the HealthMonitor, and
/// the in-memory last-good snapshot.
class TrainerGuard {
 public:
  /// `trainer` tags checkpoints so a FedAvg directory cannot silently
  /// restore into a DP-SGD run.
  TrainerGuard(const CheckpointConfig& checkpoint, const HealthConfig& health,
               std::string trainer);

  /// Resumes from disk when configured, then snapshots the (possibly
  /// restored) state as the initial last-good. Returns the number of
  /// already-completed rounds (0 on a fresh start).
  std::int64_t begin(const PayloadWriter& save, const PayloadReader& load);

  /// Outcome of end_of_round() for the trainer's loop.
  struct Verdict {
    Health health = Health::kOk;
    bool rolled_back = false;
    /// True when max_rollbacks was exhausted: stop training; the last-good
    /// state has been restored.
    bool give_up = false;
    /// After a rollback: the round training resumes *after*.
    std::int64_t resume_round = 0;
    /// Learning-rate multiplier the trainer must apply after a rollback.
    double lr_scale = 1.0;
  };

  /// Health-checks the completed round. Healthy: snapshots state (and
  /// persists at the configured cadence). Tripped: restores the last-good
  /// state via `load` and reports how the trainer should continue.
  Verdict end_of_round(std::int64_t round, std::optional<double> loss,
                       std::span<const float> params,
                       const PayloadWriter& save, const PayloadReader& load);

  bool checkpointing() const { return manager_.has_value(); }
  bool active() const { return manager_.has_value() || health_.config().enabled; }
  const CheckpointManager* manager() const {
    return manager_ ? &*manager_ : nullptr;
  }
  std::int64_t rollbacks() const { return rollbacks_; }

 private:
  std::optional<CheckpointManager> manager_;
  HealthMonitor health_;
  std::string trainer_;
  std::string last_good_;  ///< serialized archive of the last healthy state
  std::int64_t last_good_round_ = 0;
  std::int64_t rollbacks_ = 0;
};

/// Tags every checkpoint payload: writes the trainer name + state version.
void write_state_header(BinaryWriter& w, const std::string& trainer,
                        std::uint32_t version);
/// Validates name/version; returns the stored version (<= `version`).
std::uint32_t read_state_header(BinaryReader& r, const std::string& trainer,
                                std::uint32_t version);

}  // namespace mdl::ckpt
