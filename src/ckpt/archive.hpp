// Crash-safe archive framing + atomic file I/O for mdl::ckpt.
//
// An archive is a self-verifying byte string:
//
//   [u32 magic "MDLK"] [u32 format version] [u64 payload length]
//   [payload bytes]                                        (BinaryWriter)
//   [u32 CRC-32 over header + payload]
//
// Format version 1 stores the payload verbatim; version 2 stores it as a
// compress::BlockCodec (Huffman+RLE) stream — model weights and ledgers
// are exactly the skewed, zero-heavy bytes the codec targets, so rotating
// checkpoints shrink on flash. Readers auto-detect the version, so v1 and
// v2 archives interoperate.
//
// decode_archive() rejects anything whose framing, length field, or CRC
// does not check out — a truncated file, a bit flip anywhere in header or
// payload, and trailing garbage all throw mdl::Error before one payload
// byte is interpreted (for v2 the CRC is over the *encoded* bytes, so
// corruption is caught before the codec ever parses them; the codec's own
// hardened decoder backstops the CRC). write_file_atomic() writes via a
// temp file + fsync + rename (then fsyncs the directory), so a crash
// mid-write leaves either the old file or the new one, never a
// half-written hybrid.
#pragma once

#include <functional>
#include <string>

#include "core/serialize.hpp"

namespace mdl::ckpt {

/// Serializes payload content into an archive (see framing above).
using PayloadWriter = std::function<void(BinaryWriter&)>;
/// Deserializes payload content; must consume the payload exactly.
using PayloadReader = std::function<void(BinaryReader&)>;

/// Renders `payload` into a CRC-framed archive string. With `compress` the
/// payload travels as a BlockCodec stream (format version 2); readers
/// auto-detect, so the flag changes size on disk, never compatibility.
std::string encode_archive(const PayloadWriter& payload,
                           bool compress = false);

/// Verifies framing + CRC of `bytes`, then runs `payload` over the payload
/// region. Throws mdl::Error on any corruption, truncation, or if the
/// reader does not consume the payload exactly.
void decode_archive(const std::string& bytes, const PayloadReader& payload);

/// Durable atomic replace: write `path`.tmp, fsync, rename onto `path`,
/// fsync the parent directory. Throws mdl::Error on any I/O failure.
void write_file_atomic(const std::string& path, const std::string& bytes);

/// Reads a whole file; throws mdl::Error if it cannot be opened/read.
std::string read_file(const std::string& path);

/// encode_archive + write_file_atomic.
void save_archive(const std::string& path, const PayloadWriter& payload,
                  bool compress = false);

/// read_file + decode_archive.
void load_archive(const std::string& path, const PayloadReader& payload);

}  // namespace mdl::ckpt
