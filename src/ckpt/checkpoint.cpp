#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <filesystem>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace mdl::ckpt {
namespace {

namespace fs = std::filesystem;

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kCheckpointPrefix = "ckpt.";
constexpr std::uint32_t kManifestVersion = 1;

/// Parses "ckpt.<round>" → round; nullopt for anything else (including the
/// ".tmp" leftovers of an interrupted atomic write).
std::optional<std::int64_t> parse_round(const std::string& filename) {
  const std::string prefix = kCheckpointPrefix;
  if (filename.rfind(prefix, 0) != 0) return std::nullopt;
  const std::string digits = filename.substr(prefix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos)
    return std::nullopt;
  return std::stoll(digits);
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointConfig config)
    : config_(std::move(config)) {
  MDL_CHECK(!config_.dir.empty(), "checkpoint directory must be non-empty");
  MDL_CHECK(config_.every_n_rounds > 0, "checkpoint cadence must be > 0");
  MDL_CHECK(config_.keep > 0, "must retain at least one checkpoint");
  fs::create_directories(config_.dir);
}

std::string CheckpointManager::path_for_round(std::int64_t round) const {
  return (fs::path(config_.dir) /
          (kCheckpointPrefix + std::to_string(round)))
      .string();
}

void CheckpointManager::write_manifest(
    const std::vector<std::int64_t>& rounds) const {
  save_archive((fs::path(config_.dir) / kManifestName).string(),
               [&](BinaryWriter& w) {
                 w.write_u32(kManifestVersion);
                 w.write_u64(rounds.size());
                 for (const std::int64_t r : rounds) w.write_i64(r);
               });
}

std::vector<std::int64_t> CheckpointManager::list_rounds() const {
  std::vector<std::int64_t> rounds;
  const std::string manifest = (fs::path(config_.dir) / kManifestName).string();
  bool from_manifest = false;
  if (fs::exists(manifest)) {
    try {
      load_archive(manifest, [&](BinaryReader& r) {
        const std::uint32_t version = r.read_u32();
        MDL_CHECK(version == kManifestVersion,
                  "unsupported manifest version " << version);
        const std::uint64_t n = r.read_u64();
        MDL_CHECK(n <= 1'000'000, "implausible manifest entry count " << n);
        rounds.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i)
          rounds.push_back(r.read_i64());
      });
      from_manifest = true;
    } catch (const Error&) {
      // Corrupt/torn manifest: fall through to the directory scan.
      MDL_OBS_COUNTER_ADD("ckpt.manifest_corrupt", 1);
      rounds.clear();
    }
  }
  if (!from_manifest) {
    for (const auto& entry : fs::directory_iterator(config_.dir)) {
      if (!entry.is_regular_file()) continue;
      if (const auto r = parse_round(entry.path().filename().string()))
        rounds.push_back(*r);
    }
  }
  std::sort(rounds.begin(), rounds.end());
  // The manifest can momentarily disagree with the directory (crash between
  // the checkpoint write and the manifest write); keep only entries whose
  // file actually exists.
  std::erase_if(rounds, [&](std::int64_t r) {
    return !fs::exists(path_for_round(r));
  });
  return rounds;
}

void CheckpointManager::save(std::int64_t round,
                             const PayloadWriter& payload) {
  const std::string bytes = encode_archive(payload, config_.compress);
  write_file_atomic(path_for_round(round), bytes);
  MDL_OBS_COUNTER_ADD("ckpt.saves", 1);
  MDL_OBS_COUNTER_ADD("ckpt.bytes_written", bytes.size());

  std::vector<std::int64_t> rounds = list_rounds();
  if (std::find(rounds.begin(), rounds.end(), round) == rounds.end()) {
    rounds.push_back(round);
    std::sort(rounds.begin(), rounds.end());
  }
  while (rounds.size() > static_cast<std::size_t>(config_.keep)) {
    std::error_code ec;  // pruning is best effort
    fs::remove(path_for_round(rounds.front()), ec);
    rounds.erase(rounds.begin());
  }
  write_manifest(rounds);
}

std::optional<std::int64_t> CheckpointManager::load_latest(
    const PayloadReader& payload) const {
  std::vector<std::int64_t> rounds = list_rounds();
  for (auto it = rounds.rbegin(); it != rounds.rend(); ++it) {
    try {
      load_archive(path_for_round(*it), payload);
      return *it;
    } catch (const Error&) {
      // Truncated or corrupt — fall back to the previous checkpoint. The
      // bad file is left in place for postmortems; the next save at this
      // round overwrites it atomically.
      MDL_OBS_COUNTER_ADD("ckpt.corrupt_skipped", 1);
    }
  }
  return std::nullopt;
}

TrainerGuard::TrainerGuard(const CheckpointConfig& checkpoint,
                           const HealthConfig& health, std::string trainer)
    : health_(health), trainer_(std::move(trainer)) {
  if (!checkpoint.dir.empty()) {
    manager_.emplace(checkpoint);
#ifndef MDL_OBS_DISABLED
    // A fatal signal mid-training dumps the flight-recorder timeline next
    // to the ckpt.<round> archives, so the crash report and the state to
    // resume from land in the same directory.
    obs::FlightRecorder::install_crash_handler(
        (fs::path(checkpoint.dir) / "trace.crash.json").string());
#endif
  }
}

std::int64_t TrainerGuard::begin(const PayloadWriter& save,
                                 const PayloadReader& load) {
  if (!active()) return 0;
  std::int64_t completed = 0;
  if (manager_ && manager_->config().resume) {
    if (const auto round = manager_->load_latest(load)) {
      completed = *round;
      MDL_OBS_COUNTER_ADD("ckpt.resumes", 1);
    }
  }
  // Snapshot the (fresh or restored) state so a guard trip on the very
  // first round has something to roll back to.
  last_good_ = encode_archive(save);
  last_good_round_ = completed;
  return completed;
}

TrainerGuard::Verdict TrainerGuard::end_of_round(
    std::int64_t round, std::optional<double> loss,
    std::span<const float> params, const PayloadWriter& save,
    const PayloadReader& load) {
  Verdict verdict;
  verdict.resume_round = round;
  if (!active()) return verdict;

  verdict.health = health_.check(loss, params);
  if (verdict.health == Health::kOk) {
    if (health_.config().enabled || manager_) last_good_ = encode_archive(save);
    last_good_round_ = round;
    if (manager_ && round % manager_->config().every_n_rounds == 0)
      manager_->save(round, save);
    return verdict;
  }

  // Tripped: restore the last-good state and tell the trainer where to
  // pick the loop back up (and how hard to cool the learning rate).
  ++rollbacks_;
  MDL_OBS_COUNTER_ADD("health.rollbacks", 1);
  decode_archive(last_good_, load);
  health_.reset();
  verdict.rolled_back = true;
  verdict.resume_round = last_good_round_;
  verdict.lr_scale = health_.config().lr_decay_on_rollback;
  if (rollbacks_ > health_.config().max_rollbacks) {
    MDL_OBS_COUNTER_ADD("health.gave_up", 1);
    verdict.give_up = true;
  }
  return verdict;
}

void write_state_header(BinaryWriter& w, const std::string& trainer,
                        std::uint32_t version) {
  w.write_string(trainer);
  w.write_u32(version);
}

std::uint32_t read_state_header(BinaryReader& r, const std::string& trainer,
                                std::uint32_t version) {
  const std::string stored = r.read_string();
  MDL_CHECK(stored == trainer, "checkpoint belongs to trainer `"
                                   << stored << "`, expected `" << trainer
                                   << "`");
  const std::uint32_t stored_version = r.read_u32();
  MDL_CHECK(stored_version >= 1 && stored_version <= version,
            "unsupported " << trainer << " checkpoint version "
                           << stored_version);
  return stored_version;
}

}  // namespace mdl::ckpt
