#include "ckpt/health.hpp"

#include <cmath>

#include "core/error.hpp"
#include "obs/metrics.hpp"

namespace mdl::ckpt {

const char* to_string(Health h) {
  switch (h) {
    case Health::kOk: return "ok";
    case Health::kNonFinite: return "non_finite";
    case Health::kDiverged: return "diverged";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthConfig config) : config_(config) {
  MDL_CHECK(config_.divergence_factor >= 1.0,
            "divergence factor must be >= 1");
  MDL_CHECK(config_.ema_alpha > 0.0 && config_.ema_alpha <= 1.0,
            "ema alpha must be in (0, 1]");
  MDL_CHECK(config_.warmup_rounds >= 0, "warmup must be >= 0");
  MDL_CHECK(config_.lr_decay_on_rollback > 0.0 &&
                config_.lr_decay_on_rollback <= 1.0,
            "lr decay must be in (0, 1]");
  MDL_CHECK(config_.max_rollbacks >= 0, "max rollbacks must be >= 0");
}

Health HealthMonitor::check(std::optional<double> loss,
                            std::span<const float> params) {
  if (!config_.enabled) return Health::kOk;

  if (loss.has_value() && !std::isfinite(*loss)) {
    MDL_OBS_COUNTER_ADD("health.nonfinite_loss", 1);
    return Health::kNonFinite;
  }
  for (const float v : params) {
    if (!std::isfinite(v)) {
      MDL_OBS_COUNTER_ADD("health.nonfinite_params", 1);
      return Health::kNonFinite;
    }
  }

  if (loss.has_value()) {
    if (observed_ >= config_.warmup_rounds &&
        *loss > ema_ * config_.divergence_factor + config_.divergence_slack) {
      MDL_OBS_COUNTER_ADD("health.divergence_trips", 1);
      return Health::kDiverged;
    }
    ema_ = observed_ == 0 ? *loss
                          : ema_ + config_.ema_alpha * (*loss - ema_);
    ++observed_;
  }
  return Health::kOk;
}

void HealthMonitor::reset() {
  ema_ = 0.0;
  observed_ = 0;
}

}  // namespace mdl::ckpt
