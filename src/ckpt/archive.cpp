#include "ckpt/archive.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ckpt/crc32.hpp"
#include "compress/codec.hpp"

namespace mdl::ckpt {
namespace {

constexpr std::uint32_t kArchiveMagic = 0x4B4C444DU;  // "MDLK" little-endian
constexpr std::uint32_t kArchiveVersionPlain = 1;
constexpr std::uint32_t kArchiveVersionCompressed = 2;
// magic + version + payload length.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kFooterBytes = 4;  // CRC-32

std::uint32_t load_u32(const std::string& s, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, s.data() + off, sizeof v);
  return v;
}

std::uint64_t load_u64(const std::string& s, std::size_t off) {
  std::uint64_t v;
  std::memcpy(&v, s.data() + off, sizeof v);
  return v;
}

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  MDL_FAIL("" << what << " `" << path << "`: " << std::strerror(errno));
}

}  // namespace

std::string encode_archive(const PayloadWriter& payload, bool compress) {
  std::ostringstream body;
  {
    BinaryWriter w(body);
    payload(w);
  }
  std::string payload_bytes = body.str();
  if (compress)
    payload_bytes = compress::BlockCodec().encode_string(payload_bytes);

  std::ostringstream out;
  BinaryWriter w(out);
  w.write_u32(kArchiveMagic);
  w.write_u32(compress ? kArchiveVersionCompressed : kArchiveVersionPlain);
  w.write_u64(payload_bytes.size());
  w.write_bytes(payload_bytes.data(), payload_bytes.size());
  std::string framed = out.str();
  const std::uint32_t crc = crc32(framed.data(), framed.size());
  framed.append(reinterpret_cast<const char*>(&crc), sizeof crc);
  return framed;
}

void decode_archive(const std::string& bytes, const PayloadReader& payload) {
  MDL_CHECK(bytes.size() >= kHeaderBytes + kFooterBytes,
            "archive truncated: " << bytes.size() << " bytes is smaller than "
                                  << "the minimal framing");
  const std::uint32_t magic = load_u32(bytes, 0);
  MDL_CHECK(magic == kArchiveMagic,
            "bad checkpoint archive magic 0x" << std::hex << magic);
  const std::uint32_t version = load_u32(bytes, 4);
  MDL_CHECK(version == kArchiveVersionPlain ||
                version == kArchiveVersionCompressed,
            "unsupported checkpoint archive version " << version);
  const std::uint64_t payload_len = load_u64(bytes, 8);
  MDL_CHECK(payload_len == bytes.size() - kHeaderBytes - kFooterBytes,
            "archive length mismatch: header claims " << payload_len
                << " payload bytes, file holds "
                << bytes.size() - kHeaderBytes - kFooterBytes);
  const std::uint32_t stored_crc =
      load_u32(bytes, bytes.size() - kFooterBytes);
  const std::uint32_t actual_crc =
      crc32(bytes.data(), bytes.size() - kFooterBytes);
  MDL_CHECK(stored_crc == actual_crc,
            "archive CRC mismatch: stored 0x" << std::hex << stored_crc
                                              << ", computed 0x"
                                              << actual_crc);

  std::string payload_bytes =
      bytes.substr(kHeaderBytes, static_cast<std::size_t>(payload_len));
  // The CRC above already vouched for the encoded bytes; the codec's
  // hardened decoder is the backstop if the file was tampered with
  // consistently enough to refresh the CRC.
  if (version == kArchiveVersionCompressed)
    payload_bytes = compress::BlockCodec::decode_string(payload_bytes);

  std::istringstream in(std::move(payload_bytes));
  BinaryReader r(in);
  payload(r);
  // A reader that stops early would silently ignore (possibly vital) state.
  in.peek();
  MDL_CHECK(in.eof(), "archive payload not fully consumed");
}

void write_file_atomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("cannot create", tmp);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("write failed for", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync failed for", tmp);
  }
  if (::close(fd) != 0) throw_errno("close failed for", tmp);
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    throw_errno("rename failed onto", path);

  // Make the rename itself durable: fsync the containing directory.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best effort; some filesystems refuse directory fsync
    ::close(dfd);
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  MDL_CHECK(in.is_open(), "cannot open `" << path << "`");
  std::ostringstream buf;
  buf << in.rdbuf();
  MDL_CHECK(!in.bad(), "read failed for `" << path << "`");
  return buf.str();
}

void save_archive(const std::string& path, const PayloadWriter& payload,
                  bool compress) {
  write_file_atomic(path, encode_archive(payload, compress));
}

void load_archive(const std::string& path, const PayloadReader& payload) {
  decode_archive(read_file(path), payload);
}

}  // namespace mdl::ckpt
