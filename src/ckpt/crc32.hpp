// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for checkpoint integrity.
//
// Every mdl::ckpt archive carries a CRC-32 footer over its header and
// payload so that a truncated or bit-flipped checkpoint is *detected*
// instead of deserialized into garbage weights. CRC-32 is not
// cryptographic — it guards against storage/transfer corruption, which is
// the failure mode of interest on mobile flash and interrupted writes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mdl::ckpt {

/// Streaming CRC-32: crc32(data, n) == crc32_update(crc32_update(0, a), b)
/// for any split of `data` into `a` + `b`.
std::uint32_t crc32_update(std::uint32_t crc, const void* data, std::size_t n);

/// One-shot CRC-32 of a buffer.
std::uint32_t crc32(const void* data, std::size_t n);

}  // namespace mdl::ckpt
