// Client populations for the federated trainers: materialized vs virtual.
//
// FedAvg-class schemes (McMahan et al., PAPERS.md) sample a small cohort
// per round from a *huge* device population. Materializing every client's
// shard up front caps experiments at a few hundred clients; the
// ClientPopulation interface instead lets a trainer ask for one client's
// data on demand, so per-round memory is O(cohort):
//   - MaterializedPopulation wraps a pre-built shard vector (the historical
//     path — small-N tests, benches with real partitions);
//   - VirtualPopulation derives client k's shard as a *pure function* of
//     (population_seed, k): the class centroids are shared across the
//     population (drawn once from the population seed), and each client
//     gets its own example count, Dirichlet label mix, and Gaussian
//     samples from an independent per-client stream. Nothing is stored —
//     a 1M-client population costs O(classes x features) memory.
//
// Determinism contract: shard(k) depends only on (population_seed, k) —
// never on access order, round number, or thread count — so the virtual
// path is bit-identical to running over materialize()'d shards, which is
// exactly what the PopulationTrainers tests pin.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.hpp"

namespace mdl::federated {

/// On-demand access to per-client training shards. Implementations must be
/// safe for concurrent shard() calls on distinct `scratch` objects (the
/// trainers call it from parallel_for workers).
class ClientPopulation {
 public:
  virtual ~ClientPopulation() = default;

  /// Number of clients in the population.
  virtual std::size_t size() const = 0;

  /// Example count of client `client`'s shard, without materializing the
  /// data — O(1); the survivor-weighted aggregation weights ride on this.
  virtual std::int64_t shard_size(std::size_t client) const = 0;

  /// Client `client`'s shard. Implementations either return a reference to
  /// stored data (materialized) or fill `scratch` and return it (virtual);
  /// the result is only valid until the next call with the same scratch.
  virtual const data::TabularDataset& shard(
      std::size_t client, data::TabularDataset& scratch) const = 0;

  /// Checkpoint guard: a stable 64-bit digest of the population's identity
  /// (kind, seed/derivation parameters or shard layout). A resumed run
  /// MDL_CHECKs this against the archived value, mirroring the config-seed
  /// and fault-plan-seed guards.
  virtual std::uint64_t fingerprint() const = 0;

  /// "materialized" or "virtual" (diagnostics).
  virtual const char* kind() const = 0;
};

/// The historical path: every shard lives in memory. O(population) memory;
/// retained behind the shared interface so small-N runs and real data
/// partitions keep working unchanged.
class MaterializedPopulation : public ClientPopulation {
 public:
  explicit MaterializedPopulation(std::vector<data::TabularDataset> shards);

  std::size_t size() const override { return shards_.size(); }
  std::int64_t shard_size(std::size_t client) const override;
  const data::TabularDataset& shard(
      std::size_t client, data::TabularDataset& scratch) const override;
  std::uint64_t fingerprint() const override { return fingerprint_; }
  const char* kind() const override { return "materialized"; }

  const std::vector<data::TabularDataset>& shards() const { return shards_; }

 private:
  std::vector<data::TabularDataset> shards_;
  std::uint64_t fingerprint_ = 0;
};

/// Generation parameters of a virtual population. The data distribution
/// mirrors data::make_classification + Dirichlet label skew: shared
/// Gaussian class centroids, per-client class mix ~ Dirichlet(alpha), so
/// small alpha gives the heavily non-IID per-phone shards the federated
/// experiments hinge on.
struct VirtualPopulationConfig {
  std::uint64_t population_seed = 1;
  std::uint64_t num_clients = 1000;
  std::int64_t num_features = 24;
  std::int64_t num_classes = 10;
  /// Distance between class centroids in units of within-class stddev.
  double class_sep = 2.8;
  /// Per-client example count is uniform in [min_examples, max_examples].
  std::int64_t min_examples = 8;
  std::int64_t max_examples = 64;
  /// Dirichlet concentration of each client's label mix (small = skewed).
  double label_skew_alpha = 0.3;
};

/// Derives every client's shard on demand from (population_seed, client).
/// Holds only the shared centroids — O(classes x features) regardless of
/// num_clients, which is what makes 1M-client sweeps honest.
class VirtualPopulation : public ClientPopulation {
 public:
  explicit VirtualPopulation(VirtualPopulationConfig config);

  std::size_t size() const override {
    return static_cast<std::size_t>(config_.num_clients);
  }
  std::int64_t shard_size(std::size_t client) const override;
  const data::TabularDataset& shard(
      std::size_t client, data::TabularDataset& scratch) const override;
  std::uint64_t fingerprint() const override;
  const char* kind() const override { return "virtual"; }

  /// A held-out evaluation set from the same centroids (balanced labels),
  /// drawn from a stream independent of every client's.
  data::TabularDataset test_set(std::int64_t num_examples) const;

  /// All shards as a vector — the materialized twin for the small-N
  /// bit-identity pins. O(population) memory; don't call this at scale.
  std::vector<data::TabularDataset> materialize() const;

  const VirtualPopulationConfig& config() const { return config_; }

 private:
  /// Client k's private stream: seeded by a splitmix64-style mix of
  /// (population_seed, k), so it is a pure function of the pair.
  Rng client_rng(std::size_t client) const;

  VirtualPopulationConfig config_;
  Tensor centroids_;  ///< [classes, features], shared by all clients
};

}  // namespace mdl::federated
