// Federated training (McMahan et al.): FedSGD and FedAvg.
//
// Implements the two schemes contrasted in §II-B. FedSGD is the "naively
// distributed SGD" baseline — every selected participant uploads one
// full-batch gradient per round and the server takes one step with the
// n_k/n-weighted average:
//     w_{t+1} <- w_t - eta * sum_k (n_k / n) g_k.
// FedAvg lets each participant run E local epochs of minibatch SGD before
// uploading its *model* (equivalently its update), and the server averages:
//     w^k_{t+1} <- local SGD from w_t;   w_{t+1} <- sum_k (n_k/n) w^k_{t+1}.
// The paper quotes 10-100x communication savings for the latter — the
// bench bench/fig2_fedavg_communication measures exactly that, in bytes
// from this trainer's CommLedger.
#pragma once

#include "ckpt/checkpoint.hpp"
#include "federated/common.hpp"
#include "federated/population.hpp"

namespace mdl::federated {

struct FedAvgConfig {
  std::int64_t rounds = 50;
  /// Participants selected per round (<= number of shards).
  std::int64_t clients_per_round = 10;
  /// E: local epochs per round. FedSGD fixes the equivalent of E = 1 with a
  /// single full-batch step.
  std::int64_t local_epochs = 5;
  std::int64_t batch_size = 16;
  double client_lr = 0.1;
  /// Server learning rate for FedSGD's aggregated gradient step.
  double server_lr = 0.1;
  /// true = FedSGD (gradient upload), false = FedAvg (model averaging).
  bool fedsgd = false;
  /// Stop once test accuracy reaches this (negative = run all rounds).
  double target_accuracy = -1.0;
  std::uint64_t seed = 7;
  /// Streaming-aggregation shard count: survivors are partitioned into
  /// min(cohort, agg_shards) contiguous chunks that fold their uploads into
  /// private accumulators in parallel, reduced in fixed chunk order. Part
  /// of the numeric contract — results are bit-identical across thread
  /// counts for a fixed agg_shards, and identical to the historical
  /// strictly-sequential sum whenever cohort <= agg_shards. Also caps the
  /// workspace-model pool (one model + one shard scratch per chunk).
  std::int64_t agg_shards = 16;
  /// Crash-safe checkpointing (disabled while checkpoint.dir is empty) and
  /// numerical-health rollback for the round loop (ckpt::TrainerGuard).
  ckpt::CheckpointConfig checkpoint;
  ckpt::HealthConfig health;
  /// Invoked after every completed round (including rolled-back ones),
  /// *after* the round's checkpoint is on disk — kill/resume tests use it
  /// to pace the run.
  std::function<void(const RoundStats&)> on_round;
};

/// Simulated parameter server + K participants over tabular shards.
class FedAvgTrainer {
 public:
  /// Primary form: any ClientPopulation (materialized or virtual). Per-round
  /// memory is O(cohort) — the population itself is never walked.
  FedAvgTrainer(ModelFactory factory,
                std::shared_ptr<const ClientPopulation> population,
                FedAvgConfig config);
  /// Historical form: wraps the shard vector in a MaterializedPopulation.
  FedAvgTrainer(ModelFactory factory, std::vector<data::TabularDataset> shards,
                FedAvgConfig config);

  /// Runs the configured number of rounds (or until target accuracy),
  /// evaluating on `test` after every round.
  std::vector<RoundStats> run(const data::TabularDataset& test);

  /// Routes every client<->server exchange through a fault-injecting
  /// network simulator (non-owning; must outlive run()). Aggregation
  /// becomes survivor-weighted, stale/failed uploads are rejected, and a
  /// round with fewer deliveries than the plan's quorum aborts (the global
  /// model is kept unchanged). nullptr restores the loss-free network.
  void attach_network(sim::SimNetwork* net) { net_ = net; }

  /// Prices every exchange in entropy-coded wire bytes (non-owning; must
  /// outlive run()). The ledger then bills encoded bytes (raw bytes stay
  /// in bytes_*_raw) and an attached SimNetwork sizes its transfers by the
  /// encoded broadcast. Training math is unchanged — the codec is a
  /// pricing shim, not a lossy channel. nullptr restores raw accounting.
  void attach_wire_codec(const WireCodec* codec) { wire_ = codec; }

  nn::Sequential& global_model() { return *global_; }
  const CommLedger& ledger() const { return ledger_; }
  std::int64_t model_size() const { return model_size_; }
  /// Workspace models currently allocated — capped at
  /// min(cohort, agg_shards), never the population size (tests pin this).
  std::size_t worker_pool_size() const { return client_workers_.size(); }

 private:
  /// Complete run state for crash-safe resume: config seed + fault-plan
  /// seed guards, current client LR, RNG engine, flattened global model,
  /// and the communication ledger.
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

  /// Grows the workspace pool (models + shard scratches) to `n` slots —
  /// one per aggregation chunk, so at most min(cohort, agg_shards) slots
  /// ever exist; slots are reused across rounds. Extra workspaces are
  /// built from throwaway RNGs (their weights are overwritten before use),
  /// so the trainer's rng_ stream is untouched.
  void ensure_client_workers(std::size_t n);

  ModelFactory factory_;
  std::shared_ptr<const ClientPopulation> population_;
  FedAvgConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Sequential> global_;
  /// Per-chunk workspaces for the parallel local-training pass; one model
  /// per aggregation chunk (clients within a chunk train sequentially).
  std::vector<std::unique_ptr<nn::Sequential>> client_workers_;
  /// Per-chunk scratch datasets for virtual-population shard generation.
  std::vector<data::TabularDataset> shard_scratch_;
  std::int64_t model_size_ = 0;
  CommLedger ledger_;
  sim::SimNetwork* net_ = nullptr;
  const WireCodec* wire_ = nullptr;
};

}  // namespace mdl::federated
