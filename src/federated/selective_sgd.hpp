// Distributed selective SGD (Shokri & Shmatikov, CCS'15) — Fig. 1.
//
// Participants train local replicas on private shards; after each local
// pass they upload only a fraction theta_u of their accumulated gradient
// coordinates (those with the largest magnitude) to the parameter server,
// and download the fraction theta_d of global parameters most recently
// updated by others. The scheme trades accuracy for communication and
// privacy: even theta_u = 0.1 typically approaches centralized accuracy,
// the paper's headline observation for this system.
#pragma once

#include "ckpt/checkpoint.hpp"
#include "federated/common.hpp"
#include "federated/population.hpp"

namespace mdl::federated {

struct SelectiveSGDConfig {
  std::int64_t rounds = 30;
  /// theta_u: fraction of gradient coordinates uploaded per round.
  double upload_fraction = 0.1;
  /// theta_d: fraction of global parameters downloaded per round.
  double download_fraction = 1.0;
  std::int64_t local_epochs = 1;
  std::int64_t batch_size = 16;
  double lr = 0.1;
  std::uint64_t seed = 11;
  /// Crash-safe checkpointing + health rollback (ckpt::TrainerGuard).
  ckpt::CheckpointConfig checkpoint;
  ckpt::HealthConfig health;
};

/// Parameter server + N participants, run as synchronous rounds: every
/// participant downloads its selective fraction from the round-start server
/// snapshot, participants train concurrently (bit-identical at every thread
/// count), and accepted uploads merge into the server vector in fixed
/// participant order. (Earlier revisions simulated a round-robin where a
/// participant could see same-round uploads of its predecessors; the
/// snapshot semantics admit parallel clients — see DESIGN.md.)
class SelectiveSGDTrainer {
 public:
  /// Primary form: any ClientPopulation. Note the scheme itself keeps one
  /// replica + sync vector per participant (everyone trains every round),
  /// so trainer state is inherently O(N x model) — the population
  /// abstraction virtualizes the *data* (shards are generated on demand
  /// into per-chunk scratches), not the replicas. Selective SGD is a
  /// tens-to-hundreds-of-participants scheme; FedAvg is the 1M-client one.
  SelectiveSGDTrainer(ModelFactory factory,
                      std::shared_ptr<const ClientPopulation> population,
                      SelectiveSGDConfig config);
  /// Historical form: wraps the shard vector in a MaterializedPopulation.
  SelectiveSGDTrainer(ModelFactory factory,
                      std::vector<data::TabularDataset> shards,
                      SelectiveSGDConfig config);

  /// Runs all rounds; per-round stats evaluate the *global* model on test.
  std::vector<RoundStats> run(const data::TabularDataset& test);

  /// Accuracy of participant k's local replica (participants benefit from
  /// each other's data without sharing it — the point of the scheme).
  double participant_accuracy(std::size_t k, const data::TabularDataset& test);

  /// Routes the per-participant exchange through a fault simulator
  /// (non-owning; must outlive run()). A dropped-out participant skips the
  /// round entirely; a failed upload keeps the local replica's progress but
  /// never reaches the parameter server (bytes counted as wasted); a
  /// quorum-aborted round discards every upload.
  void attach_network(sim::SimNetwork* net) { net_ = net; }

  /// Prices every exchange in entropy-coded wire bytes (non-owning; must
  /// outlive run()). Sparse top-k payloads travel as varint index deltas +
  /// quantized values through the codec; the ledger bills encoded bytes
  /// while bytes_*_raw keeps the float/coord bill. Training math is
  /// unchanged. nullptr restores raw accounting.
  void attach_wire_codec(const WireCodec* codec) { wire_ = codec; }

  const CommLedger& ledger() const { return ledger_; }
  std::int64_t model_size() const { return model_size_; }
  /// The server's flat parameter vector (bit-exact state, e.g. for the
  /// cross-thread-count determinism tests).
  const std::vector<float>& global_parameters() const { return global_; }
  /// Workspace models currently allocated — capped at the chunk count,
  /// never the participant count.
  std::size_t worker_pool_size() const { return client_workers_.size(); }

 private:
  /// Complete run state: seed guards, current LR, RNG, the server's
  /// parameter/version vectors, every participant replica + its sync state,
  /// and the communication ledger.
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

  /// Grows the per-chunk workspace pool (throwaway-RNG models whose
  /// weights are overwritten before use; rng_ stream untouched). Capped at
  /// the chunk count — participants within a chunk train sequentially and
  /// reuse the slot.
  void ensure_client_workers(std::size_t n);

  ModelFactory factory_;
  std::shared_ptr<const ClientPopulation> population_;
  SelectiveSGDConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Sequential> eval_model_;  ///< workspace for evaluation
  /// Isolated workspaces for the parallel local-training pass.
  std::vector<std::unique_ptr<nn::Sequential>> client_workers_;
  /// Per-chunk scratch datasets for virtual-population shard generation.
  std::vector<data::TabularDataset> shard_scratch_;
  std::vector<float> global_;                   ///< server parameter vector
  std::vector<std::uint32_t> version_;          ///< per-coordinate update count
  std::vector<std::vector<float>> locals_;      ///< per-participant replicas
  std::vector<std::uint32_t> seen_version_;     ///< per-participant sync state
  std::int64_t model_size_ = 0;
  CommLedger ledger_;
  sim::SimNetwork* net_ = nullptr;
  const WireCodec* wire_ = nullptr;
};

}  // namespace mdl::federated
