#include "federated/selective_sgd.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <utility>

#include "core/threadpool.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/sim_network.hpp"

namespace mdl::federated {

namespace {
// v2 appended the population fingerprint; v3 the wire-codec flag and the
// raw-byte ledger columns. v1 archives resume unguarded.
constexpr std::uint32_t kSelectiveSgdStateVersion = 3;
/// Workspace-chunk cap: participants are partitioned into at most this many
/// contiguous chunks for the parallel pass; each chunk trains its
/// participants sequentially in one reused workspace. Per-participant work
/// is fully independent (pre-forked RNGs, snapshot downloads, merge in the
/// sequential epilogue), so chunking has no numeric effect — it only caps
/// the workspace pool at 16 models instead of one per participant.
constexpr std::size_t kWorkspaceChunks = 16;
}

void SelectiveSGDTrainer::save_state(BinaryWriter& w) const {
  ckpt::write_state_header(w, "selective_sgd", kSelectiveSgdStateVersion);
  w.write_u64(config_.seed);
  w.write_u8(net_ != nullptr ? 1 : 0);
  if (net_ != nullptr) w.write_u64(net_->plan().seed);
  w.write_f64(config_.lr);
  rng_.serialize(w);
  w.write_f32_vector(global_);
  w.write_u32_vector(version_);
  w.write_u64(locals_.size());
  for (const std::vector<float>& local : locals_) w.write_f32_vector(local);
  w.write_u32_vector(seen_version_);
  w.write_u64(ledger_.bytes_up);
  w.write_u64(ledger_.bytes_down);
  w.write_u64(population_->fingerprint());
  w.write_u8(wire_ != nullptr ? 1 : 0);
  w.write_u64(ledger_.bytes_up_raw);
  w.write_u64(ledger_.bytes_down_raw);
}

void SelectiveSGDTrainer::load_state(BinaryReader& r) {
  const std::uint32_t stored =
      ckpt::read_state_header(r, "selective_sgd", kSelectiveSgdStateVersion);
  const std::uint64_t seed = r.read_u64();
  MDL_CHECK(seed == config_.seed, "checkpoint was written with seed "
                                      << seed << ", run uses "
                                      << config_.seed);
  const bool had_net = r.read_u8() != 0;
  MDL_CHECK(had_net == (net_ != nullptr),
            "checkpoint and run disagree on fault-network attachment");
  if (had_net) {
    const std::uint64_t plan_seed = r.read_u64();
    MDL_CHECK(plan_seed == net_->plan().seed,
              "checkpoint fault plan seed " << plan_seed << " vs "
                                            << net_->plan().seed);
  }
  config_.lr = r.read_f64();
  rng_ = Rng::deserialize(r);
  std::vector<float> global = r.read_f32_vector();
  MDL_CHECK(global.size() == global_.size(),
            "checkpoint model has " << global.size() << " params, expected "
                                    << global_.size());
  global_ = std::move(global);
  version_ = r.read_u32_vector();
  MDL_CHECK(version_.size() == global_.size(), "version vector size mismatch");
  const std::uint64_t n_locals = r.read_u64();
  MDL_CHECK(n_locals == locals_.size(),
            "checkpoint has " << n_locals << " participants, run has "
                              << locals_.size());
  for (std::vector<float>& local : locals_) {
    local = r.read_f32_vector();
    MDL_CHECK(local.size() == global_.size(), "replica size mismatch");
  }
  seen_version_ = r.read_u32_vector();
  MDL_CHECK(seen_version_.size() == locals_.size() * global_.size(),
            "sync-state size mismatch");
  ledger_.bytes_up = r.read_u64();
  ledger_.bytes_down = r.read_u64();
  if (stored >= 2) {
    const std::uint64_t fp = r.read_u64();
    MDL_CHECK(fp == population_->fingerprint(),
              "checkpoint population fingerprint "
                  << fp << " vs " << population_->fingerprint()
                  << " — resumed against a different client population");
  }
  if (stored >= 3) {
    const bool had_wire = r.read_u8() != 0;
    MDL_CHECK(had_wire == (wire_ != nullptr),
              "checkpoint and run disagree on wire-codec attachment");
    ledger_.bytes_up_raw = r.read_u64();
    ledger_.bytes_down_raw = r.read_u64();
  } else {
    // Pre-codec archives billed raw bytes on the wire.
    MDL_CHECK(wire_ == nullptr,
              "cannot resume a pre-codec checkpoint with a wire codec");
    ledger_.bytes_up_raw = ledger_.bytes_up;
    ledger_.bytes_down_raw = ledger_.bytes_down;
  }
}

SelectiveSGDTrainer::SelectiveSGDTrainer(
    ModelFactory factory, std::shared_ptr<const ClientPopulation> population,
    SelectiveSGDConfig config)
    : factory_(std::move(factory)),
      population_(std::move(population)),
      config_(config),
      rng_(config.seed) {
  MDL_CHECK(population_ != nullptr && population_->size() > 0,
            "need at least one participant");
  MDL_CHECK(config_.upload_fraction > 0.0 && config_.upload_fraction <= 1.0,
            "upload fraction must be in (0, 1]");
  MDL_CHECK(config_.download_fraction > 0.0 &&
                config_.download_fraction <= 1.0,
            "download fraction must be in (0, 1]");
  eval_model_ = factory_(rng_);
  model_size_ = nn::total_size(eval_model_->parameters());
  global_ = nn::flatten_values(eval_model_->parameters());
  version_.assign(global_.size(), 0);
  // Every participant starts from the same initialization (downloaded once;
  // not counted in the per-round ledger, matching the usual accounting).
  locals_.assign(population_->size(), global_);
  seen_version_.assign(population_->size() * global_.size(), 0);
}

SelectiveSGDTrainer::SelectiveSGDTrainer(
    ModelFactory factory, std::vector<data::TabularDataset> shards,
    SelectiveSGDConfig config)
    : SelectiveSGDTrainer(
          std::move(factory),
          std::make_shared<MaterializedPopulation>(std::move(shards)),
          config) {}

void SelectiveSGDTrainer::ensure_client_workers(std::size_t n) {
  while (client_workers_.size() < n) {
    Rng scratch(config_.seed ^ (0x9E3779B97F4A7C15ULL *
                                (client_workers_.size() + 1)));
    client_workers_.push_back(factory_(scratch));
  }
  if (shard_scratch_.size() < n) shard_scratch_.resize(n);
}

std::vector<RoundStats> SelectiveSGDTrainer::run(
    const data::TabularDataset& test) {
  const auto params = eval_model_->parameters();
  const std::size_t p_count = global_.size();
  const auto top_k = [&](double fraction) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(fraction * static_cast<double>(p_count))));
  };

  std::vector<RoundStats> history;
  history.reserve(static_cast<std::size_t>(config_.rounds));

  ckpt::TrainerGuard guard(config_.checkpoint, config_.health,
                           "selective_sgd");
  const ckpt::PayloadWriter save = [this](BinaryWriter& w) { save_state(w); };
  const ckpt::PayloadReader load = [this](BinaryReader& r) { load_state(r); };
  const std::int64_t start_round = guard.begin(save, load) + 1;

  for (std::int64_t round = start_round; round <= config_.rounds; ++round) {
    MDL_OBS_SPAN_T("selective_sgd.round", obs::track_round(round));
    const std::uint64_t bytes_up_before = ledger_.bytes_up;
    const std::uint64_t bytes_down_before = ledger_.bytes_down;
    const std::uint64_t bytes_up_raw_before = ledger_.bytes_up_raw;
    const std::uint64_t bytes_down_raw_before = ledger_.bytes_down_raw;

    // With a wire codec attached, the simulated exchange is sized by
    // representative *encoded* payloads. Per-participant payloads (stale
    // coordinates, post-training deltas) only exist later, so the round is
    // priced by streams built from the server vector: the dense broadcast
    // itself, or the top-k-|g0| coordinates as a sparse stand-in. The
    // ledger bills each participant's true encoded payload in the merge.
    const auto representative_sparse = [&](std::size_t k) -> std::uint64_t {
      std::vector<std::size_t> order(p_count);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::nth_element(order.begin(),
                       order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                       order.end(), [&](std::size_t a, std::size_t b) {
                         return std::abs(global_[a]) > std::abs(global_[b]);
                       });
      std::sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k));
      std::vector<std::pair<std::uint32_t, float>> coords;
      coords.reserve(k);
      for (std::size_t j = 0; j < k; ++j)
        coords.emplace_back(static_cast<std::uint32_t>(order[j]),
                            global_[order[j]]);
      return wire_->sparse_wire_bytes(coords);
    };
    // Encoded size of the full server snapshot; reused for every dense
    // download this round (all participants fetch the same g0).
    const std::uint64_t dense_down_wire =
        wire_ != nullptr && config_.download_fraction >= 1.0
            ? wire_->dense_wire_bytes(global_)
            : static_cast<std::uint64_t>(p_count) * 4;

    // Fault-injected exchange for the whole population (loss-free without
    // an attached SimNetwork). Coordinate counts are uniform across
    // participants, so payload sizes are too.
    sim::RoundReport report;
    if (net_ != nullptr) {
      std::vector<std::size_t> all(population_->size());
      std::iota(all.begin(), all.end(), std::size_t{0});
      std::uint64_t bytes_down =
          config_.download_fraction >= 1.0
              ? static_cast<std::uint64_t>(p_count) * 4
              : static_cast<std::uint64_t>(top_k(config_.download_fraction)) *
                    8;
      std::uint64_t bytes_up =
          config_.upload_fraction >= 1.0
              ? static_cast<std::uint64_t>(p_count) * 4
              : static_cast<std::uint64_t>(top_k(config_.upload_fraction)) * 8;
      if (wire_ != nullptr) {
        bytes_down = config_.download_fraction >= 1.0
                         ? dense_down_wire
                         : representative_sparse(
                               top_k(config_.download_fraction));
        bytes_up = config_.upload_fraction >= 1.0
                       ? wire_->dense_wire_bytes(global_)
                       : representative_sparse(top_k(config_.upload_fraction));
      }
      report = net_->run_round(round, all, bytes_down, bytes_up);
    }

    // Round-start server snapshot: every participant downloads from the
    // same (g0, v0), which is what lets them train concurrently. Accepted
    // uploads merge afterwards in fixed participant order, so the round is
    // bit-identical at every thread count.
    const std::vector<float> g0 = global_;
    const std::vector<std::uint32_t> v0 = version_;

    // Prologue (sequential, fixed order): surviving participants, their
    // pre-forked RNG streams, and acceptance flags.
    std::vector<std::size_t> active;
    std::vector<Rng> client_rngs;
    std::vector<bool> accepted;
    active.reserve(population_->size());
    for (std::size_t k = 0; k < population_->size(); ++k) {
      const sim::ClientExchange* ex =
          net_ != nullptr ? &report.clients[k] : nullptr;
      if (ex != nullptr && ex->outcome == sim::Outcome::kDropout) continue;
      active.push_back(k);
      client_rngs.push_back(rng_.fork());
      accepted.push_back(ex == nullptr ||
                         (ex->delivered() && !report.aborted));
    }
    const std::size_t n_active = active.size();
    // Chunked parallel phase (see kWorkspaceChunks): each chunk owns one
    // workspace model + shard scratch and walks its participants
    // sequentially. Everything written is per-participant state; the
    // shared g0/v0 are read-only — so chunking changes no numerics.
    const std::vector<ChunkRange> chunks =
        chunk_ranges(n_active, kWorkspaceChunks);
    ensure_client_workers(chunks.size());
    std::vector<double> client_loss(n_active, 0.0);
    std::vector<std::vector<std::pair<std::uint32_t, float>>> uploads(
        n_active);
    std::vector<double> client_us(n_active, 0.0);
    // Exact encoded wire bytes per participant (filled by the chunk
    // workers when a codec is attached; the codec encode is pure, so the
    // calls are race-free).
    std::vector<std::uint64_t> dl_wire(n_active, 0);
    std::vector<std::uint64_t> ul_wire(n_active, 0);
    parallel_for(shared_pool(), chunks.size(), [&](std::size_t s) {
      nn::Sequential& worker = *client_workers_[s];
      const auto worker_params = worker.parameters();
      data::TabularDataset& scratch = shard_scratch_[s];
      std::vector<std::size_t> order(p_count);
      for (std::size_t c = chunks[s].begin; c < chunks[s].end; ++c) {
        MDL_OBS_SPAN_T("participant_update",
                       obs::track_round_client(round, active[c]));
        const auto t0 = std::chrono::steady_clock::now();
        const std::size_t k = active[c];
        std::vector<float>& local = locals_[k];
        std::uint32_t* seen = seen_version_.data() + k * p_count;

        // -- Download: theta_d fraction of the most-stale coordinates -----
        if (config_.download_fraction >= 1.0) {
          for (std::size_t i = 0; i < p_count; ++i) {
            local[i] = g0[i];
            seen[i] = v0[i];
          }
        } else {
          const std::size_t dl = top_k(config_.download_fraction);
          std::iota(order.begin(), order.end(), std::size_t{0});
          std::nth_element(order.begin(),
                           order.begin() + static_cast<std::ptrdiff_t>(dl - 1),
                           order.end(), [&](std::size_t a, std::size_t b) {
                             return v0[a] - seen[a] > v0[b] - seen[b];
                           });
          for (std::size_t j = 0; j < dl; ++j) {
            const std::size_t i = order[j];
            local[i] = g0[i];
            seen[i] = v0[i];
          }
          if (wire_ != nullptr) {
            std::vector<std::uint32_t> idx(order.begin(),
                                           order.begin() +
                                               static_cast<std::ptrdiff_t>(dl));
            std::sort(idx.begin(), idx.end());
            std::vector<std::pair<std::uint32_t, float>> coords;
            coords.reserve(dl);
            for (const std::uint32_t i : idx) coords.emplace_back(i, g0[i]);
            dl_wire[c] = wire_->sparse_wire_bytes(coords);
          }
        }

        // -- Local training -----------------------------------------------
        nn::unflatten_into_values(local, worker_params);
        client_loss[c] =
            local_sgd(worker, population_->shard(k, scratch),
                      config_.local_epochs, config_.batch_size, config_.lr,
                      client_rngs[c]);
        const std::vector<float> after = nn::flatten_values(worker_params);

        // -- Upload selection: theta_u largest |accumulated gradient| -----
        if (accepted[c]) {
          std::vector<float> delta(p_count);
          for (std::size_t i = 0; i < p_count; ++i)
            delta[i] = after[i] - local[i];
          const std::size_t ul = top_k(config_.upload_fraction);
          std::iota(order.begin(), order.end(), std::size_t{0});
          std::nth_element(order.begin(),
                           order.begin() + static_cast<std::ptrdiff_t>(ul - 1),
                           order.end(), [&](std::size_t a, std::size_t b) {
                             return std::abs(delta[a]) > std::abs(delta[b]);
                           });
          uploads[c].reserve(ul);
          for (std::size_t j = 0; j < ul; ++j) {
            const auto i = static_cast<std::uint32_t>(order[j]);
            uploads[c].emplace_back(i, delta[i]);
          }
          if (wire_ != nullptr) {
            if (config_.upload_fraction >= 1.0) {
              ul_wire[c] = wire_->dense_wire_bytes(delta);
            } else {
              std::vector<std::pair<std::uint32_t, float>> coords =
                  uploads[c];
              std::sort(coords.begin(), coords.end());
              ul_wire[c] = wire_->sparse_wire_bytes(coords);
            }
          }
        }

        local = after;  // the replica keeps all of its own progress
        client_us[c] = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      }
    });

    // Merge (sequential, fixed participant order): accepted uploads land on
    // the server vector; the ledger is settled here so its byte counts stay
    // exact and deterministic. Under fault injection a failed (or
    // abort-discarded) upload never reaches the server: the replica keeps
    // its progress, the server sees nothing, and the attempted traffic is
    // wasted bytes (failed attempts count even when a later retry
    // succeeded).
    double round_loss = 0.0;
    const auto participants = static_cast<std::int64_t>(n_active);
    for (std::size_t c = 0; c < n_active; ++c) {
      const sim::ClientExchange* ex =
          net_ != nullptr ? &report.clients[active[c]] : nullptr;
      round_loss += client_loss[c];
      if (config_.download_fraction >= 1.0) {
        const std::uint64_t raw = static_cast<std::uint64_t>(p_count) * 4;
        ledger_.encoded_down(wire_ != nullptr ? dense_down_wire : raw, raw);
      } else {
        const std::uint64_t raw =
            static_cast<std::uint64_t>(top_k(config_.download_fraction)) * 8;
        ledger_.encoded_down(wire_ != nullptr ? dl_wire[c] : raw, raw);
      }
      if (ex != nullptr) ledger_.wasted_up(ex->bytes_wasted);
      if (accepted[c]) {
        for (const auto& [i, d] : uploads[c]) {
          global_[i] += d;
          ++version_[i];
        }
        const std::uint64_t raw =
            uploads[c].size() * (config_.upload_fraction >= 1.0 ? 4 : 8);
        ledger_.encoded_up(wire_ != nullptr ? ul_wire[c] : raw, raw);
      } else if (ex->delivered()) {
        // Delivered into an aborted round: discarded by the server.
        ledger_.wasted_up(ex->bytes_up_ok);
      }
      MDL_OBS_HISTOGRAM_OBSERVE("selective_sgd.client_us", client_us[c]);
    }

    nn::unflatten_into_values(global_, params);
    RoundStats stats;
    stats.round = round;
    stats.train_loss =
        participants > 0 ? round_loss / static_cast<double>(participants)
                         : 0.0;
    stats.test_accuracy = evaluate_accuracy(*eval_model_, test);
    stats.cumulative_bytes = ledger_.total();
    stats.clients_selected = static_cast<std::int64_t>(population_->size());
    if (net_ != nullptr) {
      stats.clients_delivered = report.delivered;
      stats.dropouts = report.dropouts;
      stats.deadline_misses = report.deadline_misses;
      stats.retries = report.retries;
      stats.bytes_wasted = report.bytes_wasted;
      stats.aborted = report.aborted;
      stats.sim_latency_s = report.round_latency_s;
      stats.sim_energy_j = report.device_energy_j;
    } else {
      stats.clients_delivered = static_cast<std::int64_t>(population_->size());
    }

    // Health gate over the server vector; rounds where nobody participated
    // carry no meaningful loss.
    const std::optional<double> health_loss =
        participants > 0 ? std::optional<double>(stats.train_loss)
                         : std::nullopt;
    const ckpt::TrainerGuard::Verdict verdict = guard.end_of_round(
        round, health_loss, std::span<const float>(global_), save, load);
    stats.rolled_back = verdict.rolled_back;
    history.push_back(stats);

    MDL_OBS_COUNTER_ADD("selective_sgd.rounds", 1);
    if (stats.aborted) MDL_OBS_COUNTER_ADD("selective_sgd.round_aborts", 1);
    MDL_OBS_COUNTER_ADD("selective_sgd.bytes_up",
                        ledger_.bytes_up - bytes_up_before);
    MDL_OBS_COUNTER_ADD("selective_sgd.bytes_down",
                        ledger_.bytes_down - bytes_down_before);
    if (wire_ != nullptr) {
      MDL_OBS_COUNTER_ADD("sim.bytes_up_compressed",
                          ledger_.bytes_up - bytes_up_before);
      MDL_OBS_COUNTER_ADD("sim.bytes_down_compressed",
                          ledger_.bytes_down - bytes_down_before);
      MDL_OBS_COUNTER_ADD("sim.bytes_up_raw",
                          ledger_.bytes_up_raw - bytes_up_raw_before);
      MDL_OBS_COUNTER_ADD("sim.bytes_down_raw",
                          ledger_.bytes_down_raw - bytes_down_raw_before);
    }
    MDL_OBS_GAUGE_SET("selective_sgd.test_accuracy", stats.test_accuracy);
    MDL_OBS_GAUGE_SET("selective_sgd.train_loss", stats.train_loss);

    if (verdict.rolled_back) {
      if (verdict.give_up) break;
      config_.lr *=
          std::pow(verdict.lr_scale, static_cast<double>(guard.rollbacks()));
      nn::unflatten_into_values(global_, params);  // restored server vector
      round = verdict.resume_round;
    }
  }
  return history;
}

double SelectiveSGDTrainer::participant_accuracy(
    std::size_t k, const data::TabularDataset& test) {
  MDL_CHECK(k < locals_.size(), "participant index out of range");
  const auto params = eval_model_->parameters();
  nn::unflatten_into_values(locals_[k], params);
  return evaluate_accuracy(*eval_model_, test);
}

}  // namespace mdl::federated
