#include "federated/selective_sgd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/sim_network.hpp"

namespace mdl::federated {

SelectiveSGDTrainer::SelectiveSGDTrainer(
    ModelFactory factory, std::vector<data::TabularDataset> shards,
    SelectiveSGDConfig config)
    : factory_(std::move(factory)),
      shards_(std::move(shards)),
      config_(config),
      rng_(config.seed) {
  MDL_CHECK(!shards_.empty(), "need at least one participant");
  MDL_CHECK(config_.upload_fraction > 0.0 && config_.upload_fraction <= 1.0,
            "upload fraction must be in (0, 1]");
  MDL_CHECK(config_.download_fraction > 0.0 &&
                config_.download_fraction <= 1.0,
            "download fraction must be in (0, 1]");
  eval_model_ = factory_(rng_);
  model_size_ = nn::total_size(eval_model_->parameters());
  global_ = nn::flatten_values(eval_model_->parameters());
  version_.assign(global_.size(), 0);
  // Every participant starts from the same initialization (downloaded once;
  // not counted in the per-round ledger, matching the usual accounting).
  locals_.assign(shards_.size(), global_);
  seen_version_.assign(shards_.size() * global_.size(), 0);
}

std::vector<RoundStats> SelectiveSGDTrainer::run(
    const data::TabularDataset& test) {
  const auto params = eval_model_->parameters();
  const std::size_t p_count = global_.size();
  const auto top_k = [&](double fraction) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(fraction * static_cast<double>(p_count))));
  };

  std::vector<RoundStats> history;
  history.reserve(static_cast<std::size_t>(config_.rounds));
  std::vector<std::size_t> order(p_count);

  for (std::int64_t round = 1; round <= config_.rounds; ++round) {
    MDL_OBS_SPAN("selective_sgd.round");
    const std::uint64_t bytes_up_before = ledger_.bytes_up;
    const std::uint64_t bytes_down_before = ledger_.bytes_down;

    // Fault-injected exchange for the whole population (loss-free without
    // an attached SimNetwork). Coordinate counts are uniform across
    // participants, so payload sizes are too.
    sim::RoundReport report;
    if (net_ != nullptr) {
      std::vector<std::size_t> all(shards_.size());
      std::iota(all.begin(), all.end(), std::size_t{0});
      const std::uint64_t bytes_down =
          config_.download_fraction >= 1.0
              ? static_cast<std::uint64_t>(p_count) * 4
              : static_cast<std::uint64_t>(top_k(config_.download_fraction)) *
                    8;
      const std::uint64_t bytes_up =
          config_.upload_fraction >= 1.0
              ? static_cast<std::uint64_t>(p_count) * 4
              : static_cast<std::uint64_t>(top_k(config_.upload_fraction)) * 8;
      report = net_->run_round(round, all, bytes_down, bytes_up);
    }

    double round_loss = 0.0;
    std::int64_t participants = 0;
    for (std::size_t k = 0; k < shards_.size(); ++k) {
      const sim::ClientExchange* ex =
          net_ != nullptr ? &report.clients[k] : nullptr;
      if (ex != nullptr && ex->outcome == sim::Outcome::kDropout) continue;
      ++participants;
      MDL_OBS_SPAN("participant_update");
      std::vector<float>& local = locals_[k];
      std::uint32_t* seen = seen_version_.data() + k * p_count;

      // -- Download: theta_d fraction of the most-stale coordinates -------
      if (config_.download_fraction >= 1.0) {
        for (std::size_t i = 0; i < p_count; ++i) {
          local[i] = global_[i];
          seen[i] = version_[i];
        }
        ledger_.dense_down(p_count);
      } else {
        const std::size_t dl = top_k(config_.download_fraction);
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::nth_element(order.begin(),
                         order.begin() + static_cast<std::ptrdiff_t>(dl - 1),
                         order.end(), [&](std::size_t a, std::size_t b) {
                           return version_[a] - seen[a] >
                                  version_[b] - seen[b];
                         });
        for (std::size_t j = 0; j < dl; ++j) {
          const std::size_t i = order[j];
          local[i] = global_[i];
          seen[i] = version_[i];
        }
        ledger_.sparse_down(dl);
      }

      // -- Local training ---------------------------------------------------
      nn::unflatten_into_values(local, params);
      Rng client_rng = rng_.fork();
      round_loss += local_sgd(*eval_model_, shards_[k], config_.local_epochs,
                              config_.batch_size, config_.lr, client_rng);
      const std::vector<float> after = nn::flatten_values(params);

      // -- Upload: theta_u fraction of largest |accumulated gradient| -----
      // Under fault injection a failed (or abort-discarded) upload never
      // reaches the server: the replica keeps its progress, the parameter
      // server sees nothing, and the attempted traffic is wasted bytes.
      // Traffic burned on failed attempts counts even when a later retry
      // succeeded.
      if (ex != nullptr) ledger_.wasted_up(ex->bytes_wasted);
      const bool accepted =
          ex == nullptr || (ex->delivered() && !report.aborted);
      if (accepted) {
        std::vector<float> delta(p_count);
        for (std::size_t i = 0; i < p_count; ++i)
          delta[i] = after[i] - local[i];
        const std::size_t ul = top_k(config_.upload_fraction);
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::nth_element(order.begin(),
                         order.begin() + static_cast<std::ptrdiff_t>(ul - 1),
                         order.end(), [&](std::size_t a, std::size_t b) {
                           return std::abs(delta[a]) > std::abs(delta[b]);
                         });
        for (std::size_t j = 0; j < ul; ++j) {
          const std::size_t i = order[j];
          global_[i] += delta[i];
          ++version_[i];
        }
        if (config_.upload_fraction >= 1.0)
          ledger_.dense_up(ul);
        else
          ledger_.sparse_up(ul);
      } else if (ex->delivered()) {
        // Delivered into an aborted round: discarded by the server.
        ledger_.wasted_up(ex->bytes_up_ok);
      }

      local = after;  // the replica keeps all of its own progress
    }

    nn::unflatten_into_values(global_, params);
    RoundStats stats;
    stats.round = round;
    stats.train_loss =
        participants > 0 ? round_loss / static_cast<double>(participants)
                         : 0.0;
    stats.test_accuracy = evaluate_accuracy(*eval_model_, test);
    stats.cumulative_bytes = ledger_.total();
    stats.clients_selected = static_cast<std::int64_t>(shards_.size());
    if (net_ != nullptr) {
      stats.clients_delivered = report.delivered;
      stats.dropouts = report.dropouts;
      stats.deadline_misses = report.deadline_misses;
      stats.retries = report.retries;
      stats.bytes_wasted = report.bytes_wasted;
      stats.aborted = report.aborted;
      stats.sim_latency_s = report.round_latency_s;
      stats.sim_energy_j = report.device_energy_j;
    } else {
      stats.clients_delivered = static_cast<std::int64_t>(shards_.size());
    }
    history.push_back(stats);

    MDL_OBS_COUNTER_ADD("selective_sgd.rounds", 1);
    if (stats.aborted) MDL_OBS_COUNTER_ADD("selective_sgd.round_aborts", 1);
    MDL_OBS_COUNTER_ADD("selective_sgd.bytes_up",
                        ledger_.bytes_up - bytes_up_before);
    MDL_OBS_COUNTER_ADD("selective_sgd.bytes_down",
                        ledger_.bytes_down - bytes_down_before);
    MDL_OBS_GAUGE_SET("selective_sgd.test_accuracy", stats.test_accuracy);
    MDL_OBS_GAUGE_SET("selective_sgd.train_loss", stats.train_loss);
  }
  return history;
}

double SelectiveSGDTrainer::participant_accuracy(
    std::size_t k, const data::TabularDataset& test) {
  MDL_CHECK(k < locals_.size(), "participant index out of range");
  const auto params = eval_model_->parameters();
  nn::unflatten_into_values(locals_[k], params);
  return evaluate_accuracy(*eval_model_, test);
}

}  // namespace mdl::federated
