#include "federated/common.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"

namespace mdl::federated {

namespace {
// v2 appended `rolled_back`; v1 archives deserialize with the default false.
constexpr std::uint32_t kRoundStatsVersion = 2;
}

void serialize_round_stats(BinaryWriter& w, const RoundStats& s) {
  w.write_u32(kRoundStatsVersion);
  w.write_i64(s.round);
  w.write_f64(s.test_accuracy);
  w.write_f64(s.train_loss);
  w.write_u64(s.cumulative_bytes);
  w.write_i64(s.clients_selected);
  w.write_i64(s.clients_delivered);
  w.write_i64(s.dropouts);
  w.write_i64(s.deadline_misses);
  w.write_i64(s.retries);
  w.write_u64(s.bytes_wasted);
  w.write_u8(s.aborted ? 1 : 0);
  w.write_f64(s.sim_latency_s);
  w.write_f64(s.sim_energy_j);
  w.write_u8(s.rolled_back ? 1 : 0);
}

RoundStats deserialize_round_stats(BinaryReader& r) {
  const std::uint32_t version = r.read_u32();
  MDL_CHECK(version >= 1 && version <= kRoundStatsVersion,
            "unsupported RoundStats version " << version);
  RoundStats s;
  s.round = r.read_i64();
  s.test_accuracy = r.read_f64();
  s.train_loss = r.read_f64();
  s.cumulative_bytes = r.read_u64();
  s.clients_selected = r.read_i64();
  s.clients_delivered = r.read_i64();
  s.dropouts = r.read_i64();
  s.deadline_misses = r.read_i64();
  s.retries = r.read_i64();
  s.bytes_wasted = r.read_u64();
  s.aborted = r.read_u8() != 0;
  s.sim_latency_s = r.read_f64();
  s.sim_energy_j = r.read_f64();
  if (version >= 2) s.rolled_back = r.read_u8() != 0;
  return s;
}

ModelFactory mlp_factory(std::int64_t in_features, std::int64_t hidden,
                         std::int64_t classes) {
  MDL_CHECK(in_features > 0 && hidden > 0 && classes > 1,
            "invalid MLP factory dims");
  return [=](Rng& rng) {
    auto model = std::make_unique<nn::Sequential>();
    model->emplace<nn::Linear>(in_features, hidden, rng);
    model->emplace<nn::ReLU>();
    model->emplace<nn::Linear>(hidden, classes, rng);
    return model;
  };
}

namespace {

/// One SGD step on a batch of rows; returns the batch loss.
double sgd_step(nn::Sequential& model, const data::TabularDataset& shard,
                std::span<const std::size_t> batch, double lr) {
  const std::int64_t d = shard.dim();
  Tensor xb({static_cast<std::int64_t>(batch.size()), d});
  std::vector<std::int64_t> yb(batch.size());
  for (std::size_t r = 0; r < batch.size(); ++r) {
    xb.set_row(static_cast<std::int64_t>(r),
               shard.features.row(static_cast<std::int64_t>(batch[r])));
    yb[r] = shard.labels[batch[r]];
  }
  nn::SoftmaxCrossEntropy loss;
  const Tensor logits = model.forward(xb);
  const double l = loss.forward(logits, yb);
  model.zero_grad();
  model.backward(loss.backward());
  const auto params = model.parameters();
  for (nn::Parameter* p : params)
    p->value.add_scaled_(p->grad, static_cast<float>(-lr));
  return l;
}

}  // namespace

double local_sgd(nn::Sequential& model, const data::TabularDataset& shard,
                 std::int64_t epochs, std::int64_t batch_size, double lr,
                 Rng& rng) {
  MDL_CHECK(shard.size() > 0, "empty shard");
  MDL_CHECK(epochs > 0 && batch_size > 0 && lr > 0.0, "invalid SGD config");
  model.set_training(true);
  double last_epoch_loss = 0.0;
  for (std::int64_t e = 0; e < epochs; ++e) {
    const auto batches =
        data::minibatch_indices(static_cast<std::size_t>(shard.size()),
                                static_cast<std::size_t>(batch_size), rng);
    double sum = 0.0;
    for (const auto& batch : batches) sum += sgd_step(model, shard, batch, lr);
    last_epoch_loss = sum / static_cast<double>(batches.size());
  }
  return last_epoch_loss;
}

double full_batch_gradient(nn::Sequential& model,
                           const data::TabularDataset& shard) {
  MDL_CHECK(shard.size() > 0, "empty shard");
  model.set_training(true);
  nn::SoftmaxCrossEntropy loss;
  const Tensor logits = model.forward(shard.features);
  const double l = loss.forward(logits, shard.labels);
  model.zero_grad();
  model.backward(loss.backward());
  return l;
}

double evaluate_accuracy(nn::Sequential& model,
                         const data::TabularDataset& ds) {
  MDL_CHECK(ds.size() > 0, "empty evaluation set");
  model.set_training(false);
  const Tensor logits = model.forward(ds.features);
  model.set_training(true);
  const auto pred = logits.argmax_rows();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == ds.labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

double train_centralized(nn::Sequential& model, const data::TabularDataset& ds,
                         std::int64_t epochs, std::int64_t batch_size,
                         double lr, Rng& rng) {
  return local_sgd(model, ds, epochs, batch_size, lr, rng);
}

std::vector<std::size_t> sample_cohort(Rng& rng, std::size_t n,
                                       std::size_t k) {
  MDL_CHECK(k <= n, "cannot sample " << k << " distinct clients from " << n);
  // Sparse replay of Rng::sample_without_replacement's partial Fisher-Yates:
  // the dense version walks `idx = iota(n)` doing `swap(idx[i], idx[j])`;
  // here the permutation vector is virtual — `perm` records only displaced
  // entries (at most 2k of them), and reads fall back to the identity. Same
  // draws consumed, same cohort returned, O(k) memory.
  std::unordered_map<std::size_t, std::size_t> perm;
  perm.reserve(2 * k);
  const auto at = [&perm](std::size_t i) {
    const auto it = perm.find(i);
    return it == perm.end() ? i : it->second;
  };
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const auto j =
        static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::int64_t>(n - i))) +
        i;
    const std::size_t vi = at(i);
    const std::size_t vj = at(j);
    out.push_back(vj);
    perm[j] = vi;
    perm[i] = vj;
  }
  return out;
}

std::vector<std::size_t> sample_bernoulli_cohort(Rng& rng, std::size_t n,
                                                 double p) {
  MDL_CHECK(p >= 0.0, "negative sampling probability " << p);
  std::vector<std::size_t> out;
  if (n == 0 || p <= 0.0) return out;
  if (p >= 1.0) {  // log1p(-1) is -inf; everyone is selected
    out.resize(n);
    std::iota(out.begin(), out.end(), std::size_t{0});
    return out;
  }
  // Geometric gap skipping: the index gap to the next success is
  // floor(log(U) / log(1-p)) with U ~ Uniform(0,1], so a round costs
  // O(n*p) draws instead of n Bernoulli trials — same joint distribution.
  const double denom = std::log1p(-p);
  std::size_t i = 0;
  while (true) {
    const double u = 1.0 - rng.uniform();  // in (0, 1]
    const double gap = std::floor(std::log(u) / denom);
    // Guard the cast: gap can exceed the remaining range (or any size_t).
    if (!(gap < static_cast<double>(n - i))) break;
    i += static_cast<std::size_t>(gap);
    out.push_back(i);
    if (++i >= n) break;
  }
  return out;
}

std::vector<ChunkRange> chunk_ranges(std::size_t n, std::size_t max_chunks) {
  std::vector<ChunkRange> chunks;
  if (n == 0) return chunks;
  MDL_CHECK(max_chunks > 0, "need at least one aggregation shard");
  const std::size_t count = std::min(n, max_chunks);
  const std::size_t base = n / count;
  const std::size_t extra = n % count;
  chunks.reserve(count);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    chunks.push_back({begin, begin + len});
    begin += len;
  }
  return chunks;
}

}  // namespace mdl::federated
