#include "federated/population.hpp"

#include <cmath>

#include "core/error.hpp"

namespace mdl::federated {

namespace {

/// splitmix64-style finalizer used to key independent streams off
/// (population_seed, client, salt) triples — same mixing idiom as
/// sim::FaultPlan's per-(seed, round, client) fault draws.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  return mix64(a + 0x9E3779B97F4A7C15ULL * (b + 0x632BE59BD9B4E019ULL));
}

constexpr std::uint64_t kCentroidSalt = 0x43454E54ULL;  // "CENT"
constexpr std::uint64_t kClientSalt = 0x434C4E54ULL;    // "CLNT"
constexpr std::uint64_t kTestSalt = 0x54455354ULL;      // "TEST"

std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

// ------------------------------------------------------------------------
// MaterializedPopulation

MaterializedPopulation::MaterializedPopulation(
    std::vector<data::TabularDataset> shards)
    : shards_(std::move(shards)) {
  // Digest of the shard layout: enough to catch a resume against a
  // different partition (sizes or dims changed) without hashing the data.
  std::uint64_t fp = mix(0x6D617465ULL, shards_.size());
  for (const data::TabularDataset& s : shards_) {
    fp = mix(fp, static_cast<std::uint64_t>(s.size()));
    fp = mix(fp, static_cast<std::uint64_t>(s.dim()));
    fp = mix(fp, static_cast<std::uint64_t>(s.num_classes));
  }
  fingerprint_ = fp;
}

std::int64_t MaterializedPopulation::shard_size(std::size_t client) const {
  MDL_CHECK(client < shards_.size(), "client " << client << " out of range ("
                                               << shards_.size()
                                               << " shards)");
  return shards_[client].size();
}

const data::TabularDataset& MaterializedPopulation::shard(
    std::size_t client, data::TabularDataset& scratch) const {
  (void)scratch;  // stored shards are returned directly
  MDL_CHECK(client < shards_.size(), "client " << client << " out of range ("
                                               << shards_.size()
                                               << " shards)");
  return shards_[client];
}

// ------------------------------------------------------------------------
// VirtualPopulation

VirtualPopulation::VirtualPopulation(VirtualPopulationConfig config)
    : config_(config) {
  MDL_CHECK(config_.num_clients > 0, "need at least one client");
  MDL_CHECK(config_.num_features > 0 && config_.num_classes > 1,
            "invalid virtual population dims");
  MDL_CHECK(config_.min_examples >= 1 &&
                config_.max_examples >= config_.min_examples,
            "invalid per-client example range ["
                << config_.min_examples << ", " << config_.max_examples
                << "]");
  MDL_CHECK(config_.label_skew_alpha > 0.0,
            "label skew alpha must be positive");

  // Shared task: random unit directions scaled by class_sep, exactly the
  // centroid scheme of data::make_classification.
  Rng rng(mix(config_.population_seed, kCentroidSalt));
  centroids_ = Tensor({config_.num_classes, config_.num_features});
  for (std::int64_t c = 0; c < config_.num_classes; ++c) {
    double norm_sq = 0.0;
    for (std::int64_t j = 0; j < config_.num_features; ++j) {
      const double v = rng.normal();
      centroids_[c * config_.num_features + j] = static_cast<float>(v);
      norm_sq += v * v;
    }
    const float scale = static_cast<float>(
        config_.class_sep / std::sqrt(std::max(norm_sq, 1e-12)));
    for (std::int64_t j = 0; j < config_.num_features; ++j)
      centroids_[c * config_.num_features + j] *= scale;
  }
}

Rng VirtualPopulation::client_rng(std::size_t client) const {
  return Rng(mix(mix(config_.population_seed, kClientSalt),
                 static_cast<std::uint64_t>(client)));
}

std::int64_t VirtualPopulation::shard_size(std::size_t client) const {
  MDL_CHECK(client < size(), "client " << client << " out of range ("
                                       << size() << " clients)");
  // The example count is the client stream's *first* draw, so it can be
  // recomputed in O(1) without generating the shard.
  Rng rng = client_rng(client);
  return config_.min_examples +
         rng.uniform_int(config_.max_examples - config_.min_examples + 1);
}

const data::TabularDataset& VirtualPopulation::shard(
    std::size_t client, data::TabularDataset& scratch) const {
  MDL_CHECK(client < size(), "client " << client << " out of range ("
                                       << size() << " clients)");
  Rng rng = client_rng(client);
  const std::int64_t n =
      config_.min_examples +
      rng.uniform_int(config_.max_examples - config_.min_examples + 1);
  const std::int64_t d = config_.num_features;

  // Per-client label mix: Dirichlet(alpha) over the shared classes — the
  // standard non-IID federated partition, derived instead of partitioned.
  const std::vector<double> class_mix =
      rng.dirichlet(static_cast<std::size_t>(config_.num_classes),
                    config_.label_skew_alpha);

  scratch.num_classes = config_.num_classes;
  if (scratch.features.empty() || scratch.features.shape(0) != n ||
      scratch.features.shape(1) != d)
    scratch.features = Tensor({n, d});
  scratch.labels.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto y = static_cast<std::int64_t>(rng.categorical(class_mix));
    scratch.labels[static_cast<std::size_t>(i)] = y;
    for (std::int64_t j = 0; j < d; ++j)
      scratch.features[i * d + j] =
          centroids_[y * d + j] + static_cast<float>(rng.normal());
  }
  return scratch;
}

std::uint64_t VirtualPopulation::fingerprint() const {
  std::uint64_t fp = mix(0x76697274ULL, config_.population_seed);
  fp = mix(fp, config_.num_clients);
  fp = mix(fp, static_cast<std::uint64_t>(config_.num_features));
  fp = mix(fp, static_cast<std::uint64_t>(config_.num_classes));
  fp = mix(fp, double_bits(config_.class_sep));
  fp = mix(fp, static_cast<std::uint64_t>(config_.min_examples));
  fp = mix(fp, static_cast<std::uint64_t>(config_.max_examples));
  fp = mix(fp, double_bits(config_.label_skew_alpha));
  return fp;
}

data::TabularDataset VirtualPopulation::test_set(
    std::int64_t num_examples) const {
  MDL_CHECK(num_examples > 0, "test set needs at least one example");
  Rng rng(mix(config_.population_seed, kTestSalt));
  const std::int64_t d = config_.num_features;
  data::TabularDataset ds;
  ds.num_classes = config_.num_classes;
  ds.features = Tensor({num_examples, d});
  ds.labels.resize(static_cast<std::size_t>(num_examples));
  for (std::int64_t i = 0; i < num_examples; ++i) {
    const std::int64_t y = i % config_.num_classes;  // balanced classes
    ds.labels[static_cast<std::size_t>(i)] = y;
    for (std::int64_t j = 0; j < d; ++j)
      ds.features[i * d + j] =
          centroids_[y * d + j] + static_cast<float>(rng.normal());
  }
  return ds;
}

std::vector<data::TabularDataset> VirtualPopulation::materialize() const {
  std::vector<data::TabularDataset> shards;
  shards.reserve(size());
  for (std::size_t k = 0; k < size(); ++k) {
    data::TabularDataset scratch;
    shard(k, scratch);
    shards.push_back(std::move(scratch));
  }
  return shards;
}

}  // namespace mdl::federated
