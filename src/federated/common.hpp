// Shared machinery for the distributed-training simulators (§II).
//
// All federated/distributed schemes in the paper operate on the same
// primitives: a shared model architecture instantiated on a parameter
// server and on every participant, local SGD over a private shard, and
// communication of (subsets of) flattened parameter vectors. This header
// provides those primitives plus exact communication accounting — the
// currency in which §II-B's "10-100x less communication" claim is measured.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/random.hpp"
#include "core/serialize.hpp"
#include "data/dataset.hpp"
#include "nn/module.hpp"
#include "nn/param_utils.hpp"

namespace mdl::sim {
class SimNetwork;
}

namespace mdl::federated {

/// Builds a fresh model instance; every call must produce the same
/// architecture (weights may differ — the trainer overwrites them).
using ModelFactory = std::function<std::unique_ptr<nn::Sequential>(Rng&)>;

/// Standard MLP factory for the federated experiments:
/// in -> hidden (ReLU) -> classes.
ModelFactory mlp_factory(std::int64_t in_features, std::int64_t hidden,
                         std::int64_t classes);

/// Prices federated payloads in *encoded* bytes on the wire. Implemented in
/// mdl::compress (quantize + BlockCodec entropy coding) and attached to a
/// trainer via attach_wire_codec(); the trainer itself stays codec-agnostic
/// (mdl_federated cannot link mdl_compress — the dependency points the other
/// way). A wire codec changes only the byte accounting and the simulated
/// network's view of transfer sizes; the training math is untouched.
class WireCodec {
 public:
  virtual ~WireCodec() = default;
  /// Encoded wire bytes for a dense float payload (model broadcast, FedAvg
  /// upload, DP-clipped delta).
  virtual std::uint64_t dense_wire_bytes(std::span<const float> values) const = 0;
  /// Encoded wire bytes for a sparse (index, value) payload with indices
  /// strictly ascending (selective-SGD top-k exchange).
  virtual std::uint64_t sparse_wire_bytes(
      std::span<const std::pair<std::uint32_t, float>> coords) const = 0;
};

/// Byte-exact communication ledger. Parameters/gradients travel as float32;
/// sparse (selective) transfers additionally pay 4 bytes per coordinate
/// index, matching the cost model of Shokri & Shmatikov.
///
/// bytes_up/bytes_down are *on-wire* bytes — equal to the raw accounting
/// unless the trainer has a WireCodec attached, in which case encoded_up /
/// encoded_down bill the entropy-coded size while bytes_*_raw keeps the
/// uncompressed float/coord bill for the compressed-vs-raw sweeps.
struct CommLedger {
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  std::uint64_t bytes_up_raw = 0;
  std::uint64_t bytes_down_raw = 0;

  void dense_up(std::uint64_t floats) {
    bytes_up += floats * 4;
    bytes_up_raw += floats * 4;
  }
  void dense_down(std::uint64_t floats) {
    bytes_down += floats * 4;
    bytes_down_raw += floats * 4;
  }
  void sparse_up(std::uint64_t coords) {
    bytes_up += coords * 8;
    bytes_up_raw += coords * 8;
  }
  void sparse_down(std::uint64_t coords) {
    bytes_down += coords * 8;
    bytes_down_raw += coords * 8;
  }
  /// Codec-priced transfer: `wire` encoded bytes crossed the radio standing
  /// in for `raw` uncompressed ones.
  void encoded_up(std::uint64_t wire, std::uint64_t raw) {
    bytes_up += wire;
    bytes_up_raw += raw;
  }
  void encoded_down(std::uint64_t wire, std::uint64_t raw) {
    bytes_down += wire;
    bytes_down_raw += raw;
  }
  /// Raw uplink traffic that delivered nothing (truncated/corrupted/stale
  /// uploads injected by mdl::sim) — it still crossed the radio, so it
  /// counts toward the communication bill.
  void wasted_up(std::uint64_t bytes) {
    bytes_up += bytes;
    bytes_up_raw += bytes;
  }
  std::uint64_t total() const { return bytes_up + bytes_down; }
};

/// Per-round metrics emitted by the trainers. The sim_* / fault fields stay
/// zero unless a mdl::sim::SimNetwork is attached to the trainer.
struct RoundStats {
  std::int64_t round = 0;
  double test_accuracy = 0.0;
  double train_loss = 0.0;
  std::uint64_t cumulative_bytes = 0;
  std::int64_t clients_selected = 0;
  std::int64_t clients_delivered = 0;
  std::int64_t dropouts = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t retries = 0;
  std::uint64_t bytes_wasted = 0;
  bool aborted = false;          ///< quorum not met; global model unchanged
  double sim_latency_s = 0.0;    ///< simulated synchronous-round latency
  double sim_energy_j = 0.0;     ///< simulated device energy for the round
  /// The round tripped the health guard and was undone (ckpt::TrainerGuard);
  /// training replayed it from the last-good state.
  bool rolled_back = false;

  bool operator==(const RoundStats&) const = default;
};

/// Versioned binary round-trip for round state, so a federated run's
/// history can be archived next to its model checkpoint and replayed.
void serialize_round_stats(BinaryWriter& w, const RoundStats& s);
RoundStats deserialize_round_stats(BinaryReader& r);

/// Draws `k` distinct client ids uniformly from [0, n) in O(k) time and
/// memory — a sparse-map partial Fisher-Yates that produces *exactly* the
/// same sample (and consumes exactly the same Rng draws) as
/// Rng::sample_without_replacement, without ever building the O(n)
/// permutation vector. This is what lets a trainer pick a 100-client
/// cohort out of a 1M-client population per round.
std::vector<std::size_t> sample_cohort(Rng& rng, std::size_t n,
                                       std::size_t k);

/// Samples each of [0, n) independently with probability p (DP-FedAvg's
/// "modification 1") via geometric gap skipping: O(expected cohort) draws
/// instead of n Bernoulli draws, identical selection distribution. Returns
/// the selected ids in increasing order.
std::vector<std::size_t> sample_bernoulli_cohort(Rng& rng, std::size_t n,
                                                 double p);

/// One contiguous range of cohort indices, processed sequentially by a
/// single aggregation shard.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive
  std::size_t size() const { return end - begin; }
};

/// Balanced contiguous partition of [0, n) into min(n, max_chunks) ranges
/// (sizes differ by at most one, earlier chunks get the extras). The
/// partition depends only on (n, max_chunks) — never on the thread count —
/// which is the basis of the streaming aggregator's bit-reproducibility:
/// each chunk folds its clients in index order into a private accumulator,
/// and chunks reduce in fixed order afterwards. When every chunk holds one
/// client (n <= max_chunks) the fold order degenerates to the historical
/// strictly-sequential sum, bit for bit.
std::vector<ChunkRange> chunk_ranges(std::size_t n, std::size_t max_chunks);

/// Runs `epochs` of minibatch SGD on `model` over `shard`. Returns the mean
/// training loss of the final epoch.
double local_sgd(nn::Sequential& model, const data::TabularDataset& shard,
                 std::int64_t epochs, std::int64_t batch_size, double lr,
                 Rng& rng);

/// One full-batch gradient of the cross-entropy loss at the current
/// parameters; gradients are left in the model's Parameter::grad slots.
/// Returns the loss.
double full_batch_gradient(nn::Sequential& model,
                           const data::TabularDataset& shard);

/// Classification accuracy of `model` on `ds` (runs in inference mode).
double evaluate_accuracy(nn::Sequential& model, const data::TabularDataset& ds);

/// Centralized baseline: SGD on the union of shards (upper bound in Fig. 1).
double train_centralized(nn::Sequential& model, const data::TabularDataset& ds,
                         std::int64_t epochs, std::int64_t batch_size,
                         double lr, Rng& rng);

}  // namespace mdl::federated
