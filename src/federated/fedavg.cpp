#include "federated/fedavg.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/threadpool.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/resource.hpp"
#include "obs/trace.hpp"
#include "sim/sim_network.hpp"

namespace mdl::federated {

namespace {
// v2 appended the population fingerprint; v3 the wire-codec flag and the
// raw-byte ledger columns. v1 archives resume unguarded.
constexpr std::uint32_t kFedAvgStateVersion = 3;
}

void FedAvgTrainer::save_state(BinaryWriter& w) const {
  ckpt::write_state_header(w, "fedavg", kFedAvgStateVersion);
  w.write_u64(config_.seed);
  w.write_u8(net_ != nullptr ? 1 : 0);
  if (net_ != nullptr) w.write_u64(net_->plan().seed);
  w.write_f64(config_.client_lr);
  w.write_f64(config_.server_lr);
  rng_.serialize(w);
  w.write_f32_vector(nn::flatten_values(global_->parameters()));
  w.write_u64(ledger_.bytes_up);
  w.write_u64(ledger_.bytes_down);
  w.write_u64(population_->fingerprint());
  w.write_u8(wire_ != nullptr ? 1 : 0);
  w.write_u64(ledger_.bytes_up_raw);
  w.write_u64(ledger_.bytes_down_raw);
}

void FedAvgTrainer::load_state(BinaryReader& r) {
  const std::uint32_t stored =
      ckpt::read_state_header(r, "fedavg", kFedAvgStateVersion);
  const std::uint64_t seed = r.read_u64();
  MDL_CHECK(seed == config_.seed, "checkpoint was written with seed "
                                      << seed << ", run uses "
                                      << config_.seed);
  const bool had_net = r.read_u8() != 0;
  MDL_CHECK(had_net == (net_ != nullptr),
            "checkpoint and run disagree on fault-network attachment");
  if (had_net) {
    const std::uint64_t plan_seed = r.read_u64();
    MDL_CHECK(plan_seed == net_->plan().seed,
              "checkpoint fault plan seed " << plan_seed << " vs "
                                            << net_->plan().seed);
  }
  config_.client_lr = r.read_f64();
  config_.server_lr = r.read_f64();
  rng_ = Rng::deserialize(r);
  const std::vector<float> w_global = r.read_f32_vector();
  MDL_CHECK(static_cast<std::int64_t>(w_global.size()) == model_size_,
            "checkpoint model has " << w_global.size() << " params, expected "
                                    << model_size_);
  nn::unflatten_into_values(w_global, global_->parameters());
  ledger_.bytes_up = r.read_u64();
  ledger_.bytes_down = r.read_u64();
  if (stored >= 2) {
    const std::uint64_t fp = r.read_u64();
    MDL_CHECK(fp == population_->fingerprint(),
              "checkpoint population fingerprint "
                  << fp << " vs " << population_->fingerprint()
                  << " — resumed against a different client population");
  }
  if (stored >= 3) {
    const bool had_wire = r.read_u8() != 0;
    MDL_CHECK(had_wire == (wire_ != nullptr),
              "checkpoint and run disagree on wire-codec attachment");
    ledger_.bytes_up_raw = r.read_u64();
    ledger_.bytes_down_raw = r.read_u64();
  } else {
    // Pre-codec archives billed raw bytes on the wire.
    MDL_CHECK(wire_ == nullptr,
              "cannot resume a pre-codec checkpoint with a wire codec");
    ledger_.bytes_up_raw = ledger_.bytes_up;
    ledger_.bytes_down_raw = ledger_.bytes_down;
  }
}

FedAvgTrainer::FedAvgTrainer(ModelFactory factory,
                             std::shared_ptr<const ClientPopulation> population,
                             FedAvgConfig config)
    : factory_(std::move(factory)),
      population_(std::move(population)),
      config_(config),
      rng_(config.seed) {
  MDL_CHECK(population_ != nullptr && population_->size() > 0,
            "need at least one client shard");
  MDL_CHECK(config_.clients_per_round > 0 &&
                config_.clients_per_round <=
                    static_cast<std::int64_t>(population_->size()),
            "clients_per_round " << config_.clients_per_round << " vs "
                                 << population_->size() << " clients");
  MDL_CHECK(config_.rounds > 0, "rounds must be positive");
  MDL_CHECK(config_.agg_shards > 0, "agg_shards must be positive");
  global_ = factory_(rng_);
  client_workers_.push_back(factory_(rng_));
  shard_scratch_.resize(1);
  model_size_ = nn::total_size(global_->parameters());
  MDL_CHECK(nn::total_size(client_workers_[0]->parameters()) == model_size_,
            "factory produced differently sized models");
}

FedAvgTrainer::FedAvgTrainer(ModelFactory factory,
                             std::vector<data::TabularDataset> shards,
                             FedAvgConfig config)
    : FedAvgTrainer(std::move(factory),
                    std::make_shared<MaterializedPopulation>(std::move(shards)),
                    config) {}

void FedAvgTrainer::ensure_client_workers(std::size_t n) {
  while (client_workers_.size() < n) {
    Rng scratch(config_.seed ^ (0x9E3779B97F4A7C15ULL *
                                (client_workers_.size() + 1)));
    client_workers_.push_back(factory_(scratch));
  }
  if (shard_scratch_.size() < n) shard_scratch_.resize(n);
}

std::vector<RoundStats> FedAvgTrainer::run(const data::TabularDataset& test) {
  std::vector<RoundStats> history;
  history.reserve(static_cast<std::size_t>(config_.rounds));
  const auto global_params = global_->parameters();

  ckpt::TrainerGuard guard(config_.checkpoint, config_.health, "fedavg");
  const ckpt::PayloadWriter save = [this](BinaryWriter& w) { save_state(w); };
  const ckpt::PayloadReader load = [this](BinaryReader& r) { load_state(r); };
  const std::int64_t start_round = guard.begin(save, load) + 1;

  for (std::int64_t round = start_round; round <= config_.rounds; ++round) {
    MDL_OBS_SPAN_T("fedavg.round", obs::track_round(round));
    const std::uint64_t bytes_up_before = ledger_.bytes_up;
    const std::uint64_t bytes_down_before = ledger_.bytes_down;
    const std::uint64_t bytes_up_raw_before = ledger_.bytes_up_raw;
    const std::uint64_t bytes_down_raw_before = ledger_.bytes_down_raw;
    const std::vector<float> w_global = nn::flatten_values(global_params);
    // O(cohort) sampling; consumes the same rng_ draws (and returns the
    // same cohort) as the historical sample_without_replacement call.
    const auto selected =
        sample_cohort(rng_, population_->size(),
                      static_cast<std::size_t>(config_.clients_per_round));

    RoundStats stats;
    stats.round = round;
    stats.clients_selected = static_cast<std::int64_t>(selected.size());

    // Survivors: the clients whose upload the server accepts this round.
    // Without a SimNetwork the exchange is loss-free and everyone survives.
    std::vector<std::size_t> survivors;
    bool aborted = false;
    // On-wire size of the model broadcast. With a wire codec attached it is
    // the entropy-coded size, and it also stands in for the uploads when
    // sizing the simulated exchange: uploads are same-length dense vectors
    // whose exact encoded sizes only exist after training, so the network
    // model prices the round by the broadcast encoding while the ledger
    // bills each client's true encoded upload below.
    const std::uint64_t model_raw =
        static_cast<std::uint64_t>(w_global.size()) * 4;
    const std::uint64_t broadcast_wire =
        wire_ != nullptr ? wire_->dense_wire_bytes(w_global) : model_raw;
    if (net_ != nullptr) {
      const sim::RoundReport report =
          net_->run_round(round, selected, broadcast_wire, broadcast_wire);
      aborted = report.aborted;
      for (const sim::ClientExchange& ex : report.clients) {
        if (ex.outcome == sim::Outcome::kDropout) continue;
        ledger_.encoded_down(broadcast_wire, model_raw);
        ledger_.wasted_up(ex.bytes_wasted);
        if (!ex.delivered()) continue;
        if (aborted) {
          // Delivered but discarded with the round: the bytes still flew.
          ledger_.wasted_up(ex.bytes_up_ok);
        } else {
          survivors.push_back(ex.client);
        }
      }
      stats.clients_delivered = report.delivered;
      stats.dropouts = report.dropouts;
      stats.deadline_misses = report.deadline_misses;
      stats.retries = report.retries;
      stats.bytes_wasted = report.bytes_wasted;
      stats.aborted = aborted;
      stats.sim_latency_s = report.round_latency_s;
      stats.sim_energy_j = report.device_energy_j;
    } else {
      survivors.assign(selected.begin(), selected.end());
      stats.clients_delivered = static_cast<std::int64_t>(survivors.size());
    }

    double round_loss = 0.0;
    if (!aborted && !survivors.empty()) {
      // Survivor-weighted aggregation: n_k / n over delivered updates only.
      // shard_size() is O(1) even for virtual populations.
      const std::size_t n_clients = survivors.size();
      std::vector<std::int64_t> sizes(n_clients);
      std::int64_t n_total = 0;
      for (std::size_t c = 0; c < n_clients; ++c) {
        sizes[c] = population_->shard_size(survivors[c]);
        n_total += sizes[c];
      }

      // Intra-round parallelism (see DESIGN.md): client RNGs are forked
      // sequentially in survivor order (same rng_ stream as the serial
      // loop); survivors are then partitioned into min(cohort, agg_shards)
      // contiguous chunks. Each chunk trains its clients sequentially in a
      // private workspace, streaming weight * upload into a private double
      // accumulator as each client finishes — so live memory is
      // O(chunks x model), never O(cohort x model) — and the chunk
      // accumulators reduce in fixed chunk order after the join. The
      // partition depends only on (cohort, agg_shards), so the result is
      // bit-identical at every thread count; with cohort <= agg_shards the
      // chunks are singletons and the sum is bit-identical to the
      // historical strictly-sequential fold.
      const std::vector<ChunkRange> chunks = chunk_ranges(
          n_clients, static_cast<std::size_t>(config_.agg_shards));
      ensure_client_workers(chunks.size());
      std::vector<Rng> client_rngs;
      client_rngs.reserve(n_clients);
      for (std::size_t c = 0; c < n_clients; ++c) {
        if (net_ == nullptr) ledger_.encoded_down(broadcast_wire, model_raw);
        client_rngs.push_back(rng_.fork());
      }

      std::vector<double> client_loss(n_clients, 0.0);
      std::vector<double> client_us(n_clients, 0.0);
      std::vector<std::uint64_t> upload_wire(n_clients, model_raw);
      std::vector<std::vector<double>> chunk_acc(chunks.size());
      parallel_for(shared_pool(), chunks.size(), [&](std::size_t s) {
        nn::Sequential& worker = *client_workers_[s];
        const auto worker_params = worker.parameters();
        data::TabularDataset& scratch = shard_scratch_[s];
        std::vector<double>& acc = chunk_acc[s];
        acc.assign(w_global.size(), 0.0);
        std::vector<float> upload;
        for (std::size_t c = chunks[s].begin; c < chunks[s].end; ++c) {
          // fedavg.round/client_update inline; track = (round, client id)
          MDL_OBS_SPAN_T("client_update",
                         obs::track_round_client(round, survivors[c]));
          const auto t0 = std::chrono::steady_clock::now();
          const data::TabularDataset& shard =
              population_->shard(survivors[c], scratch);
          // Download current global model to the participant.
          nn::unflatten_into_values(w_global, worker_params);
          if (config_.fedsgd) {
            client_loss[c] = full_batch_gradient(worker, shard);
            upload = nn::flatten_grads(worker_params);
          } else {
            client_loss[c] =
                local_sgd(worker, shard, config_.local_epochs,
                          config_.batch_size, config_.client_lr,
                          client_rngs[c]);
            upload = nn::flatten_values(worker_params);
          }
          // Per-client encoded upload size; the codec encode is pure, so
          // calling it from the chunk workers is race-free.
          if (wire_ != nullptr) upload_wire[c] = wire_->dense_wire_bytes(upload);
          const double weight = static_cast<double>(sizes[c]) /
                                static_cast<double>(n_total);
          for (std::size_t i = 0; i < upload.size(); ++i)
            acc[i] += weight * static_cast<double>(upload[i]);
          client_us[c] = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        }
      });

      std::vector<double> aggregate(w_global.size(), 0.0);
      for (const std::vector<double>& acc : chunk_acc)
        for (std::size_t i = 0; i < acc.size(); ++i) aggregate[i] += acc[i];
      for (std::size_t c = 0; c < n_clients; ++c) {
        const double weight = static_cast<double>(sizes[c]) /
                              static_cast<double>(n_total);
        round_loss += weight * client_loss[c];
        ledger_.encoded_up(upload_wire[c], model_raw);
        // Observed after the join, so the hot loop touches no shared
        // metric state.
        MDL_OBS_HISTOGRAM_OBSERVE("fedavg.client_us", client_us[c]);
      }

      // Server update.
      std::vector<float> w_next(w_global.size());
      if (config_.fedsgd) {
        for (std::size_t i = 0; i < w_next.size(); ++i)
          w_next[i] = w_global[i] - static_cast<float>(config_.server_lr *
                                                       aggregate[i]);
      } else {
        for (std::size_t i = 0; i < w_next.size(); ++i)
          w_next[i] = static_cast<float>(aggregate[i]);
      }
      nn::unflatten_into_values(w_next, global_params);
    }
    // Aborted (or fully failed) rounds keep the previous global model.

    stats.train_loss = round_loss;
    stats.test_accuracy = evaluate_accuracy(*global_, test);
    stats.cumulative_bytes = ledger_.total();

    // Health gate: a tripped round is recorded, undone (state restored to
    // the last-good snapshot/checkpoint), and replayed with a cooler
    // learning rate. Aborted rounds carry no meaningful loss.
    const std::vector<float> w_now = nn::flatten_values(global_params);
    const std::optional<double> health_loss =
        (aborted || survivors.empty()) ? std::nullopt
                                       : std::optional<double>(round_loss);
    const ckpt::TrainerGuard::Verdict verdict =
        guard.end_of_round(round, health_loss, w_now, save, load);
    stats.rolled_back = verdict.rolled_back;
    history.push_back(stats);

    MDL_OBS_COUNTER_ADD("fedavg.rounds", 1);
    if (stats.aborted) MDL_OBS_COUNTER_ADD("fedavg.round_aborts", 1);
    MDL_OBS_COUNTER_ADD("fedavg.bytes_up", ledger_.bytes_up - bytes_up_before);
    MDL_OBS_COUNTER_ADD("fedavg.bytes_down",
                        ledger_.bytes_down - bytes_down_before);
    if (wire_ != nullptr) {
      MDL_OBS_COUNTER_ADD("sim.bytes_up_compressed",
                          ledger_.bytes_up - bytes_up_before);
      MDL_OBS_COUNTER_ADD("sim.bytes_down_compressed",
                          ledger_.bytes_down - bytes_down_before);
      MDL_OBS_COUNTER_ADD("sim.bytes_up_raw",
                          ledger_.bytes_up_raw - bytes_up_raw_before);
      MDL_OBS_COUNTER_ADD("sim.bytes_down_raw",
                          ledger_.bytes_down_raw - bytes_down_raw_before);
    }
    MDL_OBS_GAUGE_SET("fedavg.test_accuracy", stats.test_accuracy);
    MDL_OBS_GAUGE_SET("fedavg.train_loss", stats.train_loss);
    MDL_OBS_GAUGE_SET("fedavg.peak_rss_bytes",
                      static_cast<double>(obs::peak_rss_bytes()));

    if (config_.on_round) config_.on_round(stats);

    if (verdict.rolled_back) {
      if (verdict.give_up) break;
      // Compound the decay with the rollback count so repeated trips at the
      // same round replay with strictly smaller rates (the restore above
      // just reset client_lr to the last-good value).
      config_.client_lr *=
          std::pow(verdict.lr_scale, static_cast<double>(guard.rollbacks()));
      round = verdict.resume_round;  // ++ resumes at resume_round + 1
      continue;
    }

    if (config_.target_accuracy > 0.0 &&
        stats.test_accuracy >= config_.target_accuracy)
      break;
  }
  return history;
}

}  // namespace mdl::federated
