#include "mobile/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mdl::mobile {

DeviceProfile DeviceProfile::mobile_soc() {
  // Sustained CPU fp32 throughput and power of a ~2017 flagship SoC
  // (order of magnitude: tens of GFLOPS at a 2-3 W compute envelope).
  return {"mobile-soc", 20.0, 2.5, 1.2, 0.05};
}

DeviceProfile DeviceProfile::cloud_server() {
  return {"cloud-server", 4000.0, 250.0, 0.0, 50.0};
}

DeviceProfile DeviceProfile::embedded_sensor() {
  return {"embedded-sensor", 0.5, 0.4, 0.3, 0.01};
}

NetworkModel NetworkModel::wifi() { return {40.0, 120.0, 0.01}; }
NetworkModel NetworkModel::lte() { return {8.0, 30.0, 0.05}; }
NetworkModel NetworkModel::cellular_3g() { return {0.8, 3.0, 0.12}; }

double NetworkModel::upload_time_s(std::uint64_t bytes) const {
  MDL_CHECK(uplink_mbps > 0.0, "uplink bandwidth must be positive");
  return static_cast<double>(bytes) * 8.0 / (uplink_mbps * 1e6);
}

double NetworkModel::download_time_s(std::uint64_t bytes) const {
  MDL_CHECK(downlink_mbps > 0.0, "downlink bandwidth must be positive");
  return static_cast<double>(bytes) * 8.0 / (downlink_mbps * 1e6);
}

void BatchingModel::validate() const {
  MDL_CHECK(max_batch_size > 0, "max_batch_size must be positive");
  MDL_CHECK(max_queue_delay_s >= 0.0, "max_queue_delay_s must be >= 0");
  MDL_CHECK(offered_load_rps >= 0.0, "offered_load_rps must be >= 0");
  MDL_CHECK(per_batch_overhead_s >= 0.0, "per_batch_overhead_s must be >= 0");
}

double BatchingModel::expected_occupancy() const {
  validate();
  const double filled = 1.0 + offered_load_rps * max_queue_delay_s;
  return std::min(static_cast<double>(max_batch_size), filled);
}

double BatchingModel::expected_queue_delay_s() const {
  validate();
  if (max_batch_size == 1) return 0.0;  // every batch releases immediately
  // A lone request (no other arrivals) waits out the whole delay timer.
  if (offered_load_rps <= 0.0) return max_queue_delay_s;
  // Fill window: time for max_batch_size - 1 further arrivals, truncated
  // by the delay knob. A request arrives uniformly inside the window, so
  // its mean wait is half of it.
  const double window =
      std::min(max_queue_delay_s,
               static_cast<double>(max_batch_size - 1) / offered_load_rps);
  return window / 2.0;
}

InferencePlanner::InferencePlanner(DeviceProfile device, DeviceProfile server,
                                   NetworkModel network)
    : device_(std::move(device)),
      server_(std::move(server)),
      network_(network) {
  MDL_CHECK(device_.effective_gflops > 0.0 && server_.effective_gflops > 0.0,
            "profiles need positive throughput");
}

double InferencePlanner::device_compute_s(std::int64_t flops) const {
  return static_cast<double>(flops) / (device_.effective_gflops * 1e9);
}

double InferencePlanner::server_compute_s(std::int64_t flops) const {
  return static_cast<double>(flops) / (server_.effective_gflops * 1e9);
}

CostEstimate InferencePlanner::on_device(std::int64_t flops) const {
  MDL_OBS_SPAN("mobile.plan_on_device");
  MDL_OBS_COUNTER_ADD("mobile.plans_evaluated", 1);
  CostEstimate c;
  c.latency_s = device_compute_s(flops);
  c.device_energy_j = c.latency_s * device_.compute_watts;
  return c;
}

CostEstimate InferencePlanner::on_cloud(std::uint64_t input_bytes,
                                        std::int64_t flops,
                                        std::uint64_t output_bytes) const {
  MDL_OBS_SPAN("mobile.plan_on_cloud");
  MDL_OBS_COUNTER_ADD("mobile.plans_evaluated", 1);
  CostEstimate c;
  const double up = network_.upload_time_s(input_bytes);
  const double down = network_.download_time_s(output_bytes);
  c.latency_s = network_.rtt_s + up + server_compute_s(flops) + down;
  c.device_energy_j = (up + down) * device_.radio_watts +
                      (network_.rtt_s + server_compute_s(flops)) *
                          device_.idle_watts;
  c.bytes_up = input_bytes;
  c.bytes_down = output_bytes;
  return c;
}

CostEstimate InferencePlanner::split(std::int64_t local_flops,
                                     std::uint64_t rep_bytes,
                                     std::int64_t cloud_flops,
                                     std::uint64_t output_bytes) const {
  MDL_OBS_SPAN("mobile.plan_split");
  MDL_OBS_COUNTER_ADD("mobile.plans_evaluated", 1);
  CostEstimate c;
  const double local = device_compute_s(local_flops);
  const double up = network_.upload_time_s(rep_bytes);
  const double down = network_.download_time_s(output_bytes);
  c.latency_s =
      local + network_.rtt_s + up + server_compute_s(cloud_flops) + down;
  c.device_energy_j = local * device_.compute_watts +
                      (up + down) * device_.radio_watts +
                      (network_.rtt_s + server_compute_s(cloud_flops)) *
                          device_.idle_watts;
  c.bytes_up = rep_bytes;
  c.bytes_down = output_bytes;
  return c;
}

CostEstimate InferencePlanner::on_cloud(std::uint64_t input_bytes,
                                        std::int64_t flops,
                                        std::uint64_t output_bytes,
                                        const BatchingModel& batching) const {
  CostEstimate c = on_cloud(input_bytes, flops, output_bytes);
  const double extra =
      batching.expected_queue_delay_s() + batching.amortized_overhead_s();
  c.latency_s += extra;
  c.device_energy_j += extra * device_.idle_watts;  // phone idles while queued
  return c;
}

CostEstimate InferencePlanner::split(std::int64_t local_flops,
                                     std::uint64_t rep_bytes,
                                     std::int64_t cloud_flops,
                                     std::uint64_t output_bytes,
                                     const BatchingModel& batching) const {
  CostEstimate c = split(local_flops, rep_bytes, cloud_flops, output_bytes);
  const double extra =
      batching.expected_queue_delay_s() + batching.amortized_overhead_s();
  c.latency_s += extra;
  c.device_energy_j += extra * device_.idle_watts;
  return c;
}

void RetryPolicy::validate() const {
  MDL_CHECK(max_attempts >= 1, "max_attempts must be >= 1");
  MDL_CHECK(timeout_s > 0.0, "timeout_s must be positive");
  MDL_CHECK(backoff_base_s >= 0.0, "backoff_base_s must be >= 0");
  MDL_CHECK(backoff_mult >= 1.0, "backoff_mult must be >= 1");
}

double RetryPolicy::expected_attempts(double fail_prob) const {
  validate();
  MDL_CHECK(fail_prob >= 0.0 && fail_prob <= 1.0, "fail_prob must be in [0,1]");
  // Attempt i happens iff the first i-1 attempts all failed.
  double e = 0.0;
  for (std::int64_t i = 0; i < max_attempts; ++i)
    e += std::pow(fail_prob, static_cast<double>(i));
  return e;
}

double RetryPolicy::fallback_prob(double fail_prob) const {
  validate();
  MDL_CHECK(fail_prob >= 0.0 && fail_prob <= 1.0, "fail_prob must be in [0,1]");
  return std::pow(fail_prob, static_cast<double>(max_attempts));
}

double RetryPolicy::backoff_sum_s(std::int64_t k) const {
  validate();
  MDL_CHECK(k >= 0, "k must be >= 0");
  double sum = 0.0;
  for (std::int64_t i = 0; i < k; ++i)
    sum += backoff_base_s * std::pow(backoff_mult, static_cast<double>(i));
  return sum;
}

DegradedSplitEstimate InferencePlanner::split_degraded(
    std::int64_t local_flops, std::uint64_t rep_bytes,
    std::int64_t cloud_flops, std::uint64_t output_bytes,
    const BatchingModel& batching, const RetryPolicy& retry, double fail_prob,
    std::int64_t fallback_flops) const {
  MDL_OBS_SPAN("mobile.plan_split_degraded");
  retry.validate();
  MDL_CHECK(fail_prob >= 0.0 && fail_prob <= 1.0, "fail_prob must be in [0,1]");
  MDL_CHECK(fallback_flops >= 0, "fallback_flops must be >= 0");

  // Cost of the happy path (includes the local half) and of a request that
  // exhausts its attempts and answers on-device. The local representation
  // is computed exactly once either way.
  const CostEstimate success =
      split(local_flops, rep_bytes, cloud_flops, output_bytes, batching);
  const CostEstimate local = on_device(local_flops);
  const CostEstimate degraded = on_device(fallback_flops);

  // What one failed attempt costs the phone: the radio is busy for the
  // upload, then the phone idles out the rest of the timeout.
  const double up_s =
      std::min(network_.upload_time_s(rep_bytes), retry.timeout_s);
  const double fail_energy_j = up_s * device_.radio_watts +
                               (retry.timeout_s - up_s) * device_.idle_watts;

  DegradedSplitEstimate out;
  const double p = fail_prob;
  // Enumerate outcomes exactly: success at attempt i (i-1 failures before
  // it), plus the all-failed fallback tail. max_attempts is small.
  for (std::int64_t i = 1; i <= retry.max_attempts; ++i) {
    const double prob =
        std::pow(p, static_cast<double>(i - 1)) * (1.0 - p);
    const double wasted_s = static_cast<double>(i - 1) * retry.timeout_s +
                            retry.backoff_sum_s(i - 1);
    out.expected.latency_s += prob * (success.latency_s + wasted_s);
    out.expected.device_energy_j +=
        prob * (success.device_energy_j +
                static_cast<double>(i - 1) * fail_energy_j +
                retry.backoff_sum_s(i - 1) * device_.idle_watts);
    out.expected.bytes_up += static_cast<std::uint64_t>(
        prob * static_cast<double>(i) * static_cast<double>(rep_bytes));
    out.expected.bytes_down += static_cast<std::uint64_t>(
        prob * static_cast<double>(output_bytes));
  }
  const double p_fb = retry.fallback_prob(p);
  const double a = static_cast<double>(retry.max_attempts);
  const double fb_wasted_s =
      a * retry.timeout_s + retry.backoff_sum_s(retry.max_attempts - 1);
  out.expected.latency_s +=
      p_fb * (local.latency_s + degraded.latency_s + fb_wasted_s);
  out.expected.device_energy_j +=
      p_fb * (local.device_energy_j + degraded.device_energy_j +
              a * fail_energy_j +
              retry.backoff_sum_s(retry.max_attempts - 1) * device_.idle_watts);
  out.expected.bytes_up += static_cast<std::uint64_t>(
      p_fb * a * static_cast<double>(rep_bytes));

  out.fallback_fraction = p_fb;
  out.expected_attempts = retry.expected_attempts(p);
  return out;
}

}  // namespace mdl::mobile
