// Mobile inference cost model (§III): where should a trained DNN run?
//
// The paper frames the deployment choice as on-device inference (no
// network, private, but compute/energy constrained) vs. cloud inference
// (fast server, but pays upload latency/energy and exposes data), with
// split inference in between. This module provides an analytic
// latency/energy/app-size model over FLOP-counted mdl::nn networks,
// device profiles with published-order-of-magnitude constants, and a
// bandwidth-parameterized radio model — the substitute for the authors'
// phone+cloud testbed documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <string>

#include "nn/module.hpp"

namespace mdl::mobile {

/// Compute + radio characteristics of one endpoint.
struct DeviceProfile {
  std::string name;
  double effective_gflops = 10.0;  ///< sustained fp32 throughput
  double compute_watts = 2.0;      ///< power while computing
  double radio_watts = 1.0;        ///< power while transmitting/receiving
  double idle_watts = 0.05;

  /// ~2017 smartphone SoC (CPU path, the deployment target of §III-B).
  static DeviceProfile mobile_soc();
  /// Cloud server with a discrete accelerator.
  static DeviceProfile cloud_server();
  /// Low-end wearable / embedded sensor node.
  static DeviceProfile embedded_sensor();
};

/// Link between phone and cloud.
struct NetworkModel {
  double uplink_mbps = 10.0;
  double downlink_mbps = 40.0;
  double rtt_s = 0.05;

  static NetworkModel wifi();
  static NetworkModel lte();
  static NetworkModel cellular_3g();

  double upload_time_s(std::uint64_t bytes) const;
  double download_time_s(std::uint64_t bytes) const;
};

/// Server-side dynamic batching (the mdl::serve policy) seen from one
/// request's perspective: a batch is released at max_batch_size or after
/// max_queue_delay_s, so a request pays extra queueing latency but shares
/// the per-batch dispatch overhead with its batch-mates.
struct BatchingModel {
  std::int64_t max_batch_size = 8;
  double max_queue_delay_s = 0.002;
  /// Aggregate arrival rate at the server (all clients), requests/second.
  double offered_load_rps = 100.0;
  /// Fixed cost per released batch (stacking, dispatch, kernel launch).
  double per_batch_overhead_s = 2e-4;

  /// Throws mdl::Error if any knob is out of range.
  void validate() const;

  /// Mean requests per released batch: 1 + arrivals during the fill
  /// window, capped at max_batch_size. Low load degenerates to 1.
  double expected_occupancy() const;

  /// Mean time a request waits for its batch to form: half the fill
  /// window, where the window is the time to gather max_batch_size
  /// arrivals or max_queue_delay_s, whichever is shorter.
  double expected_queue_delay_s() const;

  /// Per-request share of the per-batch overhead.
  double amortized_overhead_s() const {
    return per_batch_overhead_s / expected_occupancy();
  }
};

/// Cost of executing one inference under a given placement.
struct CostEstimate {
  double latency_s = 0.0;
  double device_energy_j = 0.0;  ///< energy drawn from the phone battery
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
};

/// Client-side retry policy for the split path (the serve::SplitClient
/// knobs), modelled analytically: attempts fail i.i.d. with probability f
/// (stall, shed, executor error), each failed attempt burns the timeout,
/// retries are separated by exponential backoff, and exhausting the
/// attempts degrades to the on-device fallback. Jitter is mean-1, so it
/// drops out of every expectation.
struct RetryPolicy {
  std::int64_t max_attempts = 3;  ///< 1 = no retries
  double timeout_s = 0.02;        ///< latency paid by each failed attempt
  double backoff_base_s = 5e-4;   ///< wait before retry k: base * mult^k
  double backoff_mult = 2.0;

  /// Throws mdl::Error if any knob is out of range.
  void validate() const;

  /// Expected cloud attempts per request, in [1, max_attempts].
  double expected_attempts(double fail_prob) const;
  /// P(every attempt fails) = fail_prob^max_attempts — the degraded-mode
  /// (fallback) fraction of requests.
  double fallback_prob(double fail_prob) const;
  /// Total backoff before 0-based retry `k` has happened (sum of the first
  /// k backoff terms).
  double backoff_sum_s(std::int64_t k) const;
};

/// Expected cost of the fault-tolerant split path (retries + degraded
/// mode), plus how the answers divide between cloud and fallback.
struct DegradedSplitEstimate {
  CostEstimate expected;          ///< availability-weighted expectation
  double fallback_fraction = 0.0; ///< requests answered on-device
  double expected_attempts = 0.0; ///< mean cloud attempts per request
};

/// Evaluates the three placements for a given model.
class InferencePlanner {
 public:
  InferencePlanner(DeviceProfile device, DeviceProfile server,
                   NetworkModel network);

  /// Whole model on the phone.
  CostEstimate on_device(std::int64_t flops) const;

  /// Raw input uploaded, whole model on the server, result downloaded.
  CostEstimate on_cloud(std::uint64_t input_bytes, std::int64_t flops,
                        std::uint64_t output_bytes) const;

  /// Local prefix on the phone, representation uploaded, suffix on the
  /// server (the Fig. 3 deployment).
  CostEstimate split(std::int64_t local_flops, std::uint64_t rep_bytes,
                     std::int64_t cloud_flops,
                     std::uint64_t output_bytes) const;

  /// Cloud placement behind a batched server: adds the expected queue
  /// delay and the amortized per-batch overhead (phone idles while the
  /// server batches).
  CostEstimate on_cloud(std::uint64_t input_bytes, std::int64_t flops,
                        std::uint64_t output_bytes,
                        const BatchingModel& batching) const;

  /// Split placement behind a batched server (the mdl::serve kSplit path).
  CostEstimate split(std::int64_t local_flops, std::uint64_t rep_bytes,
                     std::int64_t cloud_flops, std::uint64_t output_bytes,
                     const BatchingModel& batching) const;

  /// The fault-tolerant split path end to end: each cloud attempt fails
  /// i.i.d. with `fail_prob`; failed attempts pay the timeout (plus the
  /// wasted upload energy/bytes) and back off per `retry`; a request whose
  /// attempts are exhausted is answered on-device by a fallback stage of
  /// `fallback_flops` (the degradation ladder). Availability is 1 by
  /// construction — this prices it.
  DegradedSplitEstimate split_degraded(
      std::int64_t local_flops, std::uint64_t rep_bytes,
      std::int64_t cloud_flops, std::uint64_t output_bytes,
      const BatchingModel& batching, const RetryPolicy& retry,
      double fail_prob, std::int64_t fallback_flops) const;

  const DeviceProfile& device() const { return device_; }
  const DeviceProfile& server() const { return server_; }
  const NetworkModel& network() const { return network_; }
  void set_network(NetworkModel network) { network_ = network; }

 private:
  double device_compute_s(std::int64_t flops) const;
  double server_compute_s(std::int64_t flops) const;

  DeviceProfile device_;
  DeviceProfile server_;
  NetworkModel network_;
};

}  // namespace mdl::mobile
