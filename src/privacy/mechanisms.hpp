// Differential-privacy noise mechanisms (§II-C, §III-A).
//
// The Laplace and Gaussian mechanisms are the building blocks of every
// privacy-preserving scheme the paper surveys: DP-SGD perturbs clipped
// per-example gradients, DP-FedAvg perturbs the averaged client update, and
// the private split-inference framework (Fig. 3) perturbs the on-device
// feature representation with nullification + noise.
#pragma once

#include <span>

#include "core/random.hpp"

namespace mdl::privacy {

/// Adds i.i.d. Laplace(sensitivity / epsilon) noise — the classic
/// eps-differentially-private mechanism for L1 sensitivity.
void laplace_mechanism(std::span<float> values, double sensitivity,
                       double epsilon, Rng& rng);

/// Adds i.i.d. Gaussian noise of the given standard deviation.
void add_gaussian_noise(std::span<float> values, double stddev, Rng& rng);

/// Standard deviation for the (eps, delta) Gaussian mechanism with L2
/// sensitivity `sensitivity`: sigma = sensitivity * sqrt(2 ln(1.25/delta)) / eps.
double gaussian_sigma(double sensitivity, double epsilon, double delta);

/// Nullification: zeroes each coordinate independently with probability
/// `rate` (the data-hiding half of the Fig. 3 perturbation). Returns the
/// number of nullified coordinates.
std::int64_t nullify(std::span<float> values, double rate, Rng& rng);

}  // namespace mdl::privacy
