#include "privacy/mechanisms.hpp"

#include <cmath>

#include "core/error.hpp"

namespace mdl::privacy {

void laplace_mechanism(std::span<float> values, double sensitivity,
                       double epsilon, Rng& rng) {
  MDL_CHECK(sensitivity >= 0.0, "sensitivity must be >= 0");
  MDL_CHECK(epsilon > 0.0, "epsilon must be > 0");
  const double scale = sensitivity / epsilon;
  for (float& v : values) v += static_cast<float>(rng.laplace(scale));
}

void add_gaussian_noise(std::span<float> values, double stddev, Rng& rng) {
  MDL_CHECK(stddev >= 0.0, "stddev must be >= 0");
  if (stddev == 0.0) return;
  for (float& v : values) v += static_cast<float>(rng.normal(0.0, stddev));
}

double gaussian_sigma(double sensitivity, double epsilon, double delta) {
  MDL_CHECK(sensitivity >= 0.0 && epsilon > 0.0 && delta > 0.0 && delta < 1.0,
            "invalid Gaussian mechanism parameters");
  return sensitivity * std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
}

std::int64_t nullify(std::span<float> values, double rate, Rng& rng) {
  MDL_CHECK(rate >= 0.0 && rate <= 1.0, "nullification rate must be in [0,1]");
  std::int64_t count = 0;
  for (float& v : values) {
    if (rng.bernoulli(rate)) {
      v = 0.0F;
      ++count;
    }
  }
  return count;
}

}  // namespace mdl::privacy
