// Sparse Vector Technique (AboveThreshold) — the mechanism Shokri &
// Shmatikov use to privately decide *which* gradient coordinates to upload
// in distributed selective SGD (§II-C).
//
// Given a stream of queries with sensitivity 1, AboveThreshold privately
// reports whether each query exceeds a threshold, halting after `max_hits`
// positive answers, at total privacy cost epsilon (independent of the
// number of negative answers — the property that makes selective gradient
// release affordable).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/random.hpp"

namespace mdl::privacy {

/// Streaming AboveThreshold with a budget of `max_hits` positive reports.
class SparseVector {
 public:
  /// `epsilon` is the total privacy budget; `sensitivity` bounds each
  /// query's change under neighboring inputs.
  SparseVector(double epsilon, double threshold, std::int64_t max_hits,
               double sensitivity, Rng& rng);

  /// Tests one query. Returns true when the (noisy) query exceeds the
  /// (noisy) threshold; throws once the hit budget is exhausted.
  bool query(double value);

  /// True while the mechanism can still answer.
  bool active() const { return hits_ < max_hits_; }
  std::int64_t hits() const { return hits_; }

  /// Convenience: indices of (up to max_hits) queries that fired.
  std::vector<std::size_t> select(std::span<const double> values);

 private:
  void resample_threshold();

  double epsilon_;
  double threshold_;
  std::int64_t max_hits_;
  double sensitivity_;
  Rng rng_;
  double noisy_threshold_ = 0.0;
  std::int64_t hits_ = 0;
};

}  // namespace mdl::privacy
