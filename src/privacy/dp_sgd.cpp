#include "privacy/dp_sgd.hpp"

#include <cmath>

#include "nn/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "privacy/mechanisms.hpp"

namespace mdl::privacy {

DpSgdResult train_dp_sgd(nn::Sequential& model,
                         const data::TabularDataset& train,
                         const data::TabularDataset& test,
                         const DpSgdConfig& config) {
  MDL_CHECK(train.size() > 0, "empty training set");
  MDL_CHECK(config.lot_size > 0 && config.lot_size <= train.size(),
            "lot size must be in [1, N]");
  MDL_CHECK(config.clip_norm > 0.0, "clip norm must be positive");
  MDL_CHECK(config.noise_multiplier >= 0.0, "noise multiplier must be >= 0");

  const auto n = static_cast<std::size_t>(train.size());
  const double q = static_cast<double>(config.lot_size) /
                   static_cast<double>(train.size());
  const auto steps_per_epoch = static_cast<std::int64_t>(
      std::llround(1.0 / q));  // one epoch in expectation
  Rng rng(config.seed);
  const auto params = model.parameters();
  const std::size_t p_count =
      static_cast<std::size_t>(nn::total_size(params));

  MomentsAccountant accountant;
  nn::SoftmaxCrossEntropy loss;
  std::int64_t steps = 0;

  model.set_training(true);
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::int64_t s = 0; s < steps_per_epoch; ++s) {
      MDL_OBS_SPAN("dp_sgd.step");
      // Poisson subsampling: each example joins the lot with probability q.
      std::vector<std::size_t> lot;
      for (std::size_t i = 0; i < n; ++i)
        if (rng.bernoulli(q)) lot.push_back(i);
      if (lot.empty()) continue;
      MDL_OBS_COUNTER_ADD("dp_sgd.examples_processed", lot.size());
      MDL_OBS_HISTOGRAM_OBSERVE("dp_sgd.lot_size",
                                static_cast<double>(lot.size()));

      std::vector<double> grad_sum(p_count, 0.0);
      for (const std::size_t i : lot) {
        // Per-example forward/backward (microbatch of one) so the clip is
        // genuinely per example.
        Tensor x = train.features
                       .slice_rows(static_cast<std::int64_t>(i),
                                   static_cast<std::int64_t>(i) + 1);
        const std::int64_t y[] = {train.labels[i]};
        const Tensor logits = model.forward(x);
        loss.forward(logits, y);
        model.zero_grad();
        model.backward(loss.backward());
        nn::clip_grad_global_norm(params, config.clip_norm);
        const std::vector<float> g = nn::flatten_grads(params);
        for (std::size_t j = 0; j < p_count; ++j)
          grad_sum[j] += static_cast<double>(g[j]);
      }

      // Noise the sum, normalize by the expected lot size, and step.
      const double sigma = config.noise_multiplier * config.clip_norm;
      std::vector<float> noisy(p_count);
      for (std::size_t j = 0; j < p_count; ++j)
        noisy[j] = static_cast<float>(
            (grad_sum[j] + rng.normal(0.0, sigma)) /
            static_cast<double>(config.lot_size));

      std::size_t off = 0;
      for (nn::Parameter* p : params) {
        for (std::int64_t j = 0; j < p->value.size(); ++j)
          p->value[j] -= static_cast<float>(config.lr) * noisy[off + static_cast<std::size_t>(j)];
        off += static_cast<std::size_t>(p->value.size());
        p->grad.zero();
      }
      ++steps;
      MDL_OBS_COUNTER_ADD("dp_sgd.steps", 1);
    }
  }

  if (config.noise_multiplier > 0.0)
    accountant.add_steps(steps, q, config.noise_multiplier);

  DpSgdResult result;
  result.steps = steps;
  result.test_accuracy = federated::evaluate_accuracy(model, test);
  result.epsilon = config.noise_multiplier > 0.0
                       ? accountant.epsilon(config.delta)
                       : std::numeric_limits<double>::infinity();
  MDL_OBS_GAUGE_SET("dp_sgd.test_accuracy", result.test_accuracy);
  MDL_OBS_GAUGE_SET("dp_sgd.epsilon", result.epsilon);
  return result;
}

}  // namespace mdl::privacy
