#include "privacy/dp_sgd.hpp"

#include <cmath>

#include "nn/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "privacy/mechanisms.hpp"

namespace mdl::privacy {

DpSgdResult train_dp_sgd(nn::Sequential& model,
                         const data::TabularDataset& train,
                         const data::TabularDataset& test,
                         const DpSgdConfig& config) {
  MDL_CHECK(train.size() > 0, "empty training set");
  MDL_CHECK(config.lot_size > 0 && config.lot_size <= train.size(),
            "lot size must be in [1, N]");
  MDL_CHECK(config.clip_norm > 0.0, "clip norm must be positive");
  MDL_CHECK(config.noise_multiplier >= 0.0, "noise multiplier must be >= 0");

  const auto n = static_cast<std::size_t>(train.size());
  const double q = static_cast<double>(config.lot_size) /
                   static_cast<double>(train.size());
  const auto steps_per_epoch = static_cast<std::int64_t>(
      std::llround(1.0 / q));  // one epoch in expectation
  Rng rng(config.seed);
  const auto params = model.parameters();
  const std::size_t p_count =
      static_cast<std::size_t>(nn::total_size(params));

  MomentsAccountant accountant;
  nn::SoftmaxCrossEntropy loss;
  std::int64_t steps = 0;
  double lr = config.lr;  // decayed by the guard after a rollback

  constexpr std::uint32_t kDpSgdStateVersion = 1;
  ckpt::TrainerGuard guard(config.checkpoint, config.health, "dp_sgd");
  const ckpt::PayloadWriter save = [&](BinaryWriter& w) {
    ckpt::write_state_header(w, "dp_sgd", kDpSgdStateVersion);
    w.write_u64(config.seed);
    w.write_f64(lr);
    rng.serialize(w);
    w.write_f32_vector(nn::flatten_values(params));
    w.write_i64(steps);
    accountant.serialize(w);
  };
  const ckpt::PayloadReader load = [&](BinaryReader& r) {
    ckpt::read_state_header(r, "dp_sgd", kDpSgdStateVersion);
    const std::uint64_t seed = r.read_u64();
    MDL_CHECK(seed == config.seed, "checkpoint was written with seed "
                                       << seed << ", run uses "
                                       << config.seed);
    lr = r.read_f64();
    rng = Rng::deserialize(r);
    const std::vector<float> w = r.read_f32_vector();
    MDL_CHECK(w.size() == p_count, "checkpoint model has "
                                       << w.size() << " params, expected "
                                       << p_count);
    nn::unflatten_into_values(w, params);
    steps = r.read_i64();
    accountant = MomentsAccountant::deserialize(r);
  };
  // "Rounds" are epochs here: guard.begin returns completed epochs.
  const std::int64_t start_epoch = guard.begin(save, load);

  model.set_training(true);
  for (std::int64_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
    double epoch_loss_sum = 0.0;
    std::int64_t epoch_lots = 0;
    std::int64_t epoch_steps = 0;
    for (std::int64_t s = 0; s < steps_per_epoch; ++s) {
      MDL_OBS_SPAN("dp_sgd.step");
      // Poisson subsampling: each example joins the lot with probability q.
      std::vector<std::size_t> lot;
      for (std::size_t i = 0; i < n; ++i)
        if (rng.bernoulli(q)) lot.push_back(i);
      if (lot.empty()) continue;
      MDL_OBS_COUNTER_ADD("dp_sgd.examples_processed", lot.size());
      MDL_OBS_HISTOGRAM_OBSERVE("dp_sgd.lot_size",
                                static_cast<double>(lot.size()));

      std::vector<double> grad_sum(p_count, 0.0);
      double lot_loss = 0.0;
      for (const std::size_t i : lot) {
        // Per-example forward/backward (microbatch of one) so the clip is
        // genuinely per example.
        Tensor x = train.features
                       .slice_rows(static_cast<std::int64_t>(i),
                                   static_cast<std::int64_t>(i) + 1);
        const std::int64_t y[] = {train.labels[i]};
        const Tensor logits = model.forward(x);
        lot_loss += loss.forward(logits, y);
        model.zero_grad();
        model.backward(loss.backward());
        nn::clip_grad_global_norm(params, config.clip_norm);
        const std::vector<float> g = nn::flatten_grads(params);
        for (std::size_t j = 0; j < p_count; ++j)
          grad_sum[j] += static_cast<double>(g[j]);
      }

      // Noise the sum, normalize by the expected lot size, and step.
      const double sigma = config.noise_multiplier * config.clip_norm;
      std::vector<float> noisy(p_count);
      for (std::size_t j = 0; j < p_count; ++j)
        noisy[j] = static_cast<float>(
            (grad_sum[j] + rng.normal(0.0, sigma)) /
            static_cast<double>(config.lot_size));

      std::size_t off = 0;
      for (nn::Parameter* p : params) {
        for (std::int64_t j = 0; j < p->value.size(); ++j)
          p->value[j] -= static_cast<float>(lr) * noisy[off + static_cast<std::size_t>(j)];
        off += static_cast<std::size_t>(p->value.size());
        p->grad.zero();
      }
      epoch_loss_sum += lot_loss / static_cast<double>(lot.size());
      ++epoch_lots;
      ++steps;
      ++epoch_steps;
      MDL_OBS_COUNTER_ADD("dp_sgd.steps", 1);
    }

    // The budget is charged per epoch (not once at the end) so that the
    // checkpointed accountant always reflects exactly the steps taken.
    if (config.noise_multiplier > 0.0)
      accountant.add_steps(epoch_steps, q, config.noise_multiplier);

    const std::optional<double> epoch_loss =
        epoch_lots > 0
            ? std::optional<double>(epoch_loss_sum /
                                    static_cast<double>(epoch_lots))
            : std::nullopt;
    const ckpt::TrainerGuard::Verdict verdict = guard.end_of_round(
        epoch + 1, epoch_loss,
        std::span<const float>(nn::flatten_values(params)), save, load);
    if (verdict.rolled_back) {
      if (verdict.give_up) break;
      lr *= std::pow(verdict.lr_scale, static_cast<double>(guard.rollbacks()));
      epoch = verdict.resume_round - 1;  // ++ resumes at resume_round
    }
  }

  DpSgdResult result;
  result.steps = steps;
  result.rollbacks = guard.rollbacks();
  result.test_accuracy = federated::evaluate_accuracy(model, test);
  result.epsilon = config.noise_multiplier > 0.0
                       ? accountant.epsilon(config.delta)
                       : std::numeric_limits<double>::infinity();
  MDL_OBS_GAUGE_SET("dp_sgd.test_accuracy", result.test_accuracy);
  MDL_OBS_GAUGE_SET("dp_sgd.epsilon", result.epsilon);
  return result;
}

}  // namespace mdl::privacy
