#include "privacy/sparse_vector.hpp"

#include "core/error.hpp"

namespace mdl::privacy {

SparseVector::SparseVector(double epsilon, double threshold,
                           std::int64_t max_hits, double sensitivity,
                           Rng& rng)
    : epsilon_(epsilon),
      threshold_(threshold),
      max_hits_(max_hits),
      sensitivity_(sensitivity),
      rng_(rng.fork()) {
  MDL_CHECK(epsilon > 0.0, "epsilon must be positive");
  MDL_CHECK(max_hits > 0, "max_hits must be positive");
  MDL_CHECK(sensitivity > 0.0, "sensitivity must be positive");
  resample_threshold();
}

void SparseVector::resample_threshold() {
  // Budget split: eps/2 for the threshold, eps/2 across the c hits
  // (Dwork & Roth, Algorithm "NumericSparse" threshold refresh).
  const double eps1 = epsilon_ / 2.0;
  noisy_threshold_ = threshold_ + rng_.laplace(sensitivity_ / eps1);
}

bool SparseVector::query(double value) {
  MDL_CHECK(active(), "sparse vector budget exhausted after " << hits_
                                                              << " hits");
  const double eps2 = epsilon_ / 2.0;
  const double noise =
      rng_.laplace(2.0 * static_cast<double>(max_hits_) * sensitivity_ / eps2);
  if (value + noise >= noisy_threshold_) {
    ++hits_;
    if (active()) resample_threshold();
    return true;
  }
  return false;
}

std::vector<std::size_t> SparseVector::select(std::span<const double> values) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < values.size() && active(); ++i)
    if (query(values[i])) out.push_back(i);
  return out;
}

}  // namespace mdl::privacy
