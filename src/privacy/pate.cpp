#include "privacy/pate.hpp"

#include <algorithm>

#include "data/synthetic.hpp"

namespace mdl::privacy {

PateEnsemble::PateEnsemble(federated::ModelFactory factory,
                           const data::TabularDataset& sensitive,
                           PateConfig config)
    : config_(config), classes_(sensitive.num_classes), rng_(config.seed) {
  MDL_CHECK(config_.num_teachers >= 2, "need at least two teachers");
  MDL_CHECK(config_.noise_scale > 0.0, "noise scale must be positive");
  MDL_CHECK(sensitive.size() >=
                static_cast<std::int64_t>(config_.num_teachers),
            "fewer sensitive examples than teachers");

  const auto shards =
      data::partition_iid(sensitive, config_.num_teachers, rng_);
  teachers_.reserve(shards.size());
  for (const auto& shard : shards) {
    auto teacher = factory(rng_);
    Rng train_rng = rng_.fork();
    federated::local_sgd(*teacher, shard, config_.teacher_epochs,
                         config_.batch_size, config_.lr, train_rng);
    teacher->set_training(false);
    teachers_.push_back(std::move(teacher));
  }
}

std::vector<std::int64_t> PateEnsemble::vote_counts(const Tensor& row) const {
  MDL_CHECK(row.ndim() == 2 && row.shape(0) == 1, "expected a [1, D] row");
  std::vector<std::int64_t> counts(static_cast<std::size_t>(classes_), 0);
  for (const auto& teacher : teachers_) {
    const auto pred = teacher->forward(row).argmax_rows();
    ++counts[static_cast<std::size_t>(pred[0])];
  }
  return counts;
}

std::int64_t PateEnsemble::noisy_label(const Tensor& row) {
  const auto counts = vote_counts(row);
  ++queries_;
  double best = -1e300;
  std::int64_t arg = 0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    const double noisy = static_cast<double>(counts[c]) +
                         rng_.laplace(config_.noise_scale);
    if (noisy > best) {
      best = noisy;
      arg = static_cast<std::int64_t>(c);
    }
  }
  return arg;
}

data::TabularDataset PateEnsemble::label_public(const Tensor& features) {
  MDL_CHECK(features.ndim() == 2, "expected [N, D] features");
  data::TabularDataset out;
  out.num_classes = classes_;
  out.features = features;
  out.labels.reserve(static_cast<std::size_t>(features.shape(0)));
  for (std::int64_t i = 0; i < features.shape(0); ++i)
    out.labels.push_back(noisy_label(features.slice_rows(i, i + 1)));
  return out;
}

PateResult run_pate(federated::ModelFactory factory,
                    const data::TabularDataset& sensitive,
                    const data::TabularDataset& public_set,
                    const data::TabularDataset& test,
                    const PateConfig& config) {
  PateEnsemble ensemble(factory, sensitive, config);
  data::TabularDataset labeled = ensemble.label_public(public_set.features);

  PateResult result;
  result.epsilon = ensemble.epsilon_spent();
  std::size_t agree = 0;
  for (std::size_t i = 0; i < labeled.labels.size(); ++i)
    if (labeled.labels[i] == public_set.labels[i]) ++agree;
  result.label_agreement =
      static_cast<double>(agree) / static_cast<double>(labeled.labels.size());

  Rng student_rng(config.seed + 1);
  auto student = factory(student_rng);
  Rng train_rng(config.seed + 2);
  federated::local_sgd(*student, labeled, config.teacher_epochs,
                       config.batch_size, config.lr, train_rng);
  result.student_accuracy = federated::evaluate_accuracy(*student, test);
  return result;
}

}  // namespace mdl::privacy
