// DP-SGD (Abadi et al., CCS'16): differentially private training of a
// neural network by per-example gradient clipping + Gaussian noise, with
// privacy tracked by the moments accountant.
//
// Each step draws a Poisson-subsampled lot (each example independently with
// probability q = lot_size / N), clips every per-example gradient to L2
// norm <= clip_norm, sums, adds N(0, (z * clip_norm)^2) noise per
// coordinate, divides by the expected lot size, and takes an SGD step.
#pragma once

#include <memory>

#include "ckpt/checkpoint.hpp"
#include "federated/common.hpp"
#include "privacy/accountant.hpp"

namespace mdl::privacy {

struct DpSgdConfig {
  std::int64_t epochs = 5;
  std::int64_t lot_size = 32;     ///< expected Poisson lot size
  double lr = 0.1;
  double clip_norm = 1.0;         ///< per-example L2 clip C
  double noise_multiplier = 1.0;  ///< z; sigma = z * C
  double delta = 1e-5;
  std::uint64_t seed = 13;
  /// Crash-safe checkpointing + health rollback at epoch granularity
  /// (ckpt::TrainerGuard). The checkpoint carries the moments accountant,
  /// so a resumed run keeps the spent privacy budget.
  ckpt::CheckpointConfig checkpoint;
  ckpt::HealthConfig health;
};

struct DpSgdResult {
  double test_accuracy = 0.0;
  double epsilon = 0.0;           ///< at config.delta, via moments accountant
  std::int64_t steps = 0;
  std::int64_t rollbacks = 0;     ///< health-guard rollbacks taken
};

/// Trains `model` on `train` with DP-SGD and reports accuracy + (eps, delta).
DpSgdResult train_dp_sgd(nn::Sequential& model,
                         const data::TabularDataset& train,
                         const data::TabularDataset& test,
                         const DpSgdConfig& config);

}  // namespace mdl::privacy
