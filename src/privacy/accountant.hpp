// Moments accountant for the subsampled Gaussian mechanism (Abadi et al.,
// CCS'16), realized through Renyi differential privacy.
//
// Tracks the privacy loss of T compositions of the Gaussian mechanism with
// noise multiplier z applied to a q-subsampled batch. For integer Renyi
// orders alpha, the per-step RDP is bounded by
//   (1/(alpha-1)) * log( sum_{k=0..alpha} C(alpha,k) (1-q)^{alpha-k} q^k
//                         * exp(k(k-1) / (2 z^2)) ),
// which is exactly the moment bound the moments accountant computes
// numerically. Composition adds RDP across steps, and conversion to
// (eps, delta)-DP takes the minimum over orders of
//   eps = rdp(alpha) + log(1/delta) / (alpha - 1).
//
// The same accountant serves DP-SGD (example-level q = L/N) and DP-FedAvg
// (user-level q = clients-per-round / total-clients), as in the paper's
// §II-C discussion of McMahan et al.'s differentially private federated
// training.
#pragma once

#include <cstdint>
#include <vector>

#include "core/serialize.hpp"

namespace mdl::privacy {

/// Accumulates RDP over steps of the subsampled Gaussian mechanism.
class MomentsAccountant {
 public:
  /// Tracks orders 2..max_order (integers). Larger max_order tightens the
  /// bound for very small q / large z.
  explicit MomentsAccountant(int max_order = 64);

  /// Accounts for `steps` compositions with sampling ratio q in (0, 1] and
  /// noise multiplier z > 0 (sigma = z * sensitivity).
  void add_steps(std::int64_t steps, double q, double noise_multiplier);

  /// Smallest epsilon achievable at the given delta over tracked orders.
  double epsilon(double delta) const;

  /// The order achieving epsilon(delta) (diagnostic).
  int optimal_order(double delta) const;

  /// RDP at a given integer order (diagnostic / tests).
  double rdp_at(int order) const;

  void reset();

  /// Archives the spent budget (per-order RDP), so a resumed DP run keeps
  /// charging the same ledger instead of silently restarting epsilon at 0.
  void serialize(BinaryWriter& w) const;
  static MomentsAccountant deserialize(BinaryReader& r);

 private:
  std::vector<double> rdp_;  ///< rdp_[i] = accumulated RDP at order i + 2
};

/// Per-step RDP of the q-subsampled Gaussian mechanism at integer `order`.
double subsampled_gaussian_rdp(double q, double noise_multiplier, int order);

}  // namespace mdl::privacy
