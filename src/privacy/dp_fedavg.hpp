// User-level differentially private federated averaging (McMahan et al.,
// "Learning Differentially Private Recurrent Language Models") — §II-C.
//
// Implements exactly the four modifications the paper lists on top of
// non-private federated training:
//   1. participants are selected *independently with probability p* rather
//      than as a fixed-size cohort;
//   2. each participant's model update is clipped to L2 norm <= S;
//   3. aggregation uses the fixed-denominator estimator (divide by the
//      expected cohort size p*K, not the realized one) so the sensitivity
//      is bounded and the moments accountant applies;
//   4. Gaussian noise N(0, (z * S / (p*K))^2) is added to the average.
// Privacy is tracked at the *user* level by the moments accountant with
// sampling ratio p per round.
#pragma once

#include "ckpt/checkpoint.hpp"
#include "federated/common.hpp"
#include "federated/population.hpp"
#include "privacy/accountant.hpp"

namespace mdl::privacy {

struct DpFedAvgConfig {
  std::int64_t rounds = 40;
  double client_sample_prob = 0.5;  ///< p: independent selection probability
  std::int64_t local_epochs = 5;
  std::int64_t batch_size = 16;
  double client_lr = 0.1;
  double clip_norm = 5.0;           ///< S: per-update L2 clip
  double noise_multiplier = 1.0;    ///< z
  double delta = 1e-5;
  std::uint64_t seed = 19;
  /// Streaming-aggregation shard count (see FedAvgConfig::agg_shards): the
  /// realized cohort folds clipped updates into min(cohort, agg_shards)
  /// chunk accumulators reduced in fixed order — bit-identical across
  /// thread counts, and to the sequential sum when cohort <= agg_shards.
  std::int64_t agg_shards = 16;
  /// Crash-safe checkpointing + health rollback (ckpt::TrainerGuard). The
  /// checkpoint carries the moments accountant, so a resumed run keeps the
  /// spent privacy budget.
  ckpt::CheckpointConfig checkpoint;
  ckpt::HealthConfig health;
};

struct DpRoundStats {
  std::int64_t round = 0;
  double test_accuracy = 0.0;
  double train_loss = 0.0;  ///< mean local loss over delivered clients
  double epsilon = 0.0;     ///< cumulative, at config.delta
  /// Fault-injection fields (zero without an attached SimNetwork).
  std::int64_t clients_selected = 0;
  std::int64_t clients_delivered = 0;
  bool aborted = false;      ///< quorum not met; no release, no privacy charge
  bool rolled_back = false;  ///< round tripped the health guard and was undone
};

/// Parameter server with user-level DP aggregation.
class DpFedAvgTrainer {
 public:
  /// Primary form: any ClientPopulation (materialized or virtual); per-round
  /// memory is O(realized cohort), independent of the population size.
  DpFedAvgTrainer(federated::ModelFactory factory,
                  std::shared_ptr<const federated::ClientPopulation> population,
                  DpFedAvgConfig config);
  /// Historical form: wraps the shard vector in a MaterializedPopulation.
  DpFedAvgTrainer(federated::ModelFactory factory,
                  std::vector<data::TabularDataset> shards,
                  DpFedAvgConfig config);

  std::vector<DpRoundStats> run(const data::TabularDataset& test);

  /// Routes the sampled cohort's exchange through a fault simulator
  /// (non-owning; must outlive run()). Lost updates simply shrink the
  /// realized cohort — the fixed-denominator estimator (modification 3)
  /// already bounds sensitivity, so dropout needs no DP correction. A
  /// quorum-aborted round releases nothing and charges no privacy budget.
  void attach_network(sim::SimNetwork* net) { net_ = net; }

  /// Prices the round's exchanges in entropy-coded wire bytes (non-owning;
  /// must outlive run()): the simulated network sizes transfers by the
  /// encoded broadcast, and the sim.bytes_*_compressed counters bill each
  /// participant's true encoded clipped delta. Training math and the
  /// privacy accounting are unchanged. nullptr restores raw sizing.
  void attach_wire_codec(const federated::WireCodec* codec) { wire_ = codec; }

  nn::Sequential& global_model() { return *global_; }
  const MomentsAccountant& accountant() const { return accountant_; }
  /// Workspace models currently allocated — capped at
  /// min(cohort, agg_shards), never the population size.
  std::size_t worker_pool_size() const { return client_workers_.size(); }

 private:
  /// Complete run state: seed guards, current client LR, RNG, flattened
  /// global model, and the accountant's spent RDP.
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

  /// Grows the per-chunk workspace pool (throwaway-RNG models whose
  /// weights are overwritten before use; rng_ stream untouched).
  void ensure_client_workers(std::size_t n);

  federated::ModelFactory factory_;
  std::shared_ptr<const federated::ClientPopulation> population_;
  DpFedAvgConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Sequential> global_;
  /// Per-chunk workspaces for the parallel local-training pass.
  std::vector<std::unique_ptr<nn::Sequential>> client_workers_;
  /// Per-chunk scratch datasets for virtual-population shard generation.
  std::vector<data::TabularDataset> shard_scratch_;
  MomentsAccountant accountant_;
  sim::SimNetwork* net_ = nullptr;
  const federated::WireCodec* wire_ = nullptr;
};

}  // namespace mdl::privacy
