#include "privacy/accountant.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace mdl::privacy {
namespace {

/// log(exp(a) + exp(b)) without overflow.
double log_add(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double hi = std::max(a, b);
  return hi + std::log1p(std::exp(std::min(a, b) - hi));
}

double log_binom(int n, int k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

}  // namespace

double subsampled_gaussian_rdp(double q, double noise_multiplier, int order) {
  MDL_CHECK(q > 0.0 && q <= 1.0, "sampling ratio must be in (0, 1]");
  MDL_CHECK(noise_multiplier > 0.0, "noise multiplier must be > 0");
  MDL_CHECK(order >= 2, "RDP order must be >= 2");

  const double z2 = noise_multiplier * noise_multiplier;
  if (q >= 1.0) {
    // Unsubsampled Gaussian: RDP(alpha) = alpha / (2 z^2).
    return static_cast<double>(order) / (2.0 * z2);
  }

  // log sum_{k} C(alpha,k) (1-q)^{alpha-k} q^k exp(k(k-1)/(2 z^2))
  double log_sum = -std::numeric_limits<double>::infinity();
  const double log_q = std::log(q);
  const double log_1mq = std::log1p(-q);
  for (int k = 0; k <= order; ++k) {
    const double term = log_binom(order, k) + k * log_q +
                        (order - k) * log_1mq +
                        static_cast<double>(k) * (k - 1) / (2.0 * z2);
    log_sum = log_add(log_sum, term);
  }
  return std::max(log_sum, 0.0) / (order - 1.0);
}

MomentsAccountant::MomentsAccountant(int max_order) {
  MDL_CHECK(max_order >= 2, "need at least order 2");
  rdp_.assign(static_cast<std::size_t>(max_order - 1), 0.0);
}

void MomentsAccountant::add_steps(std::int64_t steps, double q,
                                  double noise_multiplier) {
  MDL_CHECK(steps >= 0, "steps must be >= 0");
  if (steps == 0) return;
  for (std::size_t i = 0; i < rdp_.size(); ++i) {
    rdp_[i] += static_cast<double>(steps) *
               subsampled_gaussian_rdp(q, noise_multiplier,
                                       static_cast<int>(i) + 2);
  }
}

double MomentsAccountant::epsilon(double delta) const {
  MDL_CHECK(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < rdp_.size(); ++i) {
    const double alpha = static_cast<double>(i) + 2.0;
    best = std::min(best, rdp_[i] + std::log(1.0 / delta) / (alpha - 1.0));
  }
  return best;
}

int MomentsAccountant::optimal_order(double delta) const {
  MDL_CHECK(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  double best = std::numeric_limits<double>::infinity();
  int best_order = 2;
  for (std::size_t i = 0; i < rdp_.size(); ++i) {
    const double alpha = static_cast<double>(i) + 2.0;
    const double eps = rdp_[i] + std::log(1.0 / delta) / (alpha - 1.0);
    if (eps < best) {
      best = eps;
      best_order = static_cast<int>(alpha);
    }
  }
  return best_order;
}

double MomentsAccountant::rdp_at(int order) const {
  MDL_CHECK(order >= 2 &&
                order < static_cast<int>(rdp_.size()) + 2,
            "order " << order << " not tracked");
  return rdp_[static_cast<std::size_t>(order - 2)];
}

void MomentsAccountant::reset() {
  std::fill(rdp_.begin(), rdp_.end(), 0.0);
}

void MomentsAccountant::serialize(BinaryWriter& w) const {
  w.write_u64(rdp_.size());
  for (const double v : rdp_) w.write_f64(v);
}

MomentsAccountant MomentsAccountant::deserialize(BinaryReader& r) {
  const std::uint64_t n = r.read_u64();
  MDL_CHECK(n >= 1 && n <= 1024, "implausible accountant order count " << n);
  MomentsAccountant acc(static_cast<int>(n) + 1);
  for (auto& v : acc.rdp_) {
    v = r.read_f64();
    MDL_CHECK(v >= 0.0, "corrupt accountant state: negative RDP " << v);
  }
  return acc;
}

}  // namespace mdl::privacy
