#include "privacy/dp_fedavg.hpp"

#include <chrono>
#include <cmath>

#include "core/threadpool.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "privacy/mechanisms.hpp"
#include "sim/sim_network.hpp"

namespace mdl::privacy {

namespace {
// v2 appended the population fingerprint; v3 the wire-codec flag. v1
// archives resume unguarded.
constexpr std::uint32_t kDpFedAvgStateVersion = 3;
}

void DpFedAvgTrainer::save_state(BinaryWriter& w) const {
  ckpt::write_state_header(w, "dp_fedavg", kDpFedAvgStateVersion);
  w.write_u64(config_.seed);
  w.write_u8(net_ != nullptr ? 1 : 0);
  if (net_ != nullptr) w.write_u64(net_->plan().seed);
  w.write_f64(config_.client_lr);
  rng_.serialize(w);
  w.write_f32_vector(nn::flatten_values(global_->parameters()));
  accountant_.serialize(w);
  w.write_u64(population_->fingerprint());
  w.write_u8(wire_ != nullptr ? 1 : 0);
}

void DpFedAvgTrainer::load_state(BinaryReader& r) {
  const std::uint32_t stored =
      ckpt::read_state_header(r, "dp_fedavg", kDpFedAvgStateVersion);
  const std::uint64_t seed = r.read_u64();
  MDL_CHECK(seed == config_.seed, "checkpoint was written with seed "
                                      << seed << ", run uses "
                                      << config_.seed);
  const bool had_net = r.read_u8() != 0;
  MDL_CHECK(had_net == (net_ != nullptr),
            "checkpoint and run disagree on fault-network attachment");
  if (had_net) {
    const std::uint64_t plan_seed = r.read_u64();
    MDL_CHECK(plan_seed == net_->plan().seed,
              "checkpoint fault plan seed " << plan_seed << " vs "
                                            << net_->plan().seed);
  }
  config_.client_lr = r.read_f64();
  rng_ = Rng::deserialize(r);
  const std::vector<float> w_global = r.read_f32_vector();
  const auto params = global_->parameters();
  MDL_CHECK(static_cast<std::int64_t>(w_global.size()) ==
                nn::total_size(params),
            "checkpoint model has " << w_global.size() << " params, expected "
                                    << nn::total_size(params));
  nn::unflatten_into_values(w_global, params);
  accountant_ = MomentsAccountant::deserialize(r);
  if (stored >= 2) {
    const std::uint64_t fp = r.read_u64();
    MDL_CHECK(fp == population_->fingerprint(),
              "checkpoint population fingerprint "
                  << fp << " vs " << population_->fingerprint()
                  << " — resumed against a different client population");
  }
  if (stored >= 3) {
    const bool had_wire = r.read_u8() != 0;
    MDL_CHECK(had_wire == (wire_ != nullptr),
              "checkpoint and run disagree on wire-codec attachment");
  } else {
    MDL_CHECK(wire_ == nullptr,
              "cannot resume a pre-codec checkpoint with a wire codec");
  }
}

DpFedAvgTrainer::DpFedAvgTrainer(
    federated::ModelFactory factory,
    std::shared_ptr<const federated::ClientPopulation> population,
    DpFedAvgConfig config)
    : factory_(std::move(factory)),
      population_(std::move(population)),
      config_(config),
      rng_(config.seed) {
  MDL_CHECK(population_ != nullptr && population_->size() > 0,
            "need at least one client shard");
  MDL_CHECK(config_.client_sample_prob > 0.0 &&
                config_.client_sample_prob <= 1.0,
            "client sample probability must be in (0, 1]");
  MDL_CHECK(config_.clip_norm > 0.0, "clip norm must be positive");
  MDL_CHECK(config_.noise_multiplier >= 0.0, "noise multiplier must be >= 0");
  MDL_CHECK(config_.agg_shards > 0, "agg_shards must be positive");
  global_ = factory_(rng_);
  client_workers_.push_back(factory_(rng_));
  shard_scratch_.resize(1);
}

DpFedAvgTrainer::DpFedAvgTrainer(federated::ModelFactory factory,
                                 std::vector<data::TabularDataset> shards,
                                 DpFedAvgConfig config)
    : DpFedAvgTrainer(std::move(factory),
                      std::make_shared<federated::MaterializedPopulation>(
                          std::move(shards)),
                      config) {}

void DpFedAvgTrainer::ensure_client_workers(std::size_t n) {
  while (client_workers_.size() < n) {
    Rng scratch(config_.seed ^ (0x9E3779B97F4A7C15ULL *
                                (client_workers_.size() + 1)));
    client_workers_.push_back(factory_(scratch));
  }
  if (shard_scratch_.size() < n) shard_scratch_.resize(n);
}

std::vector<DpRoundStats> DpFedAvgTrainer::run(
    const data::TabularDataset& test) {
  const auto global_params = global_->parameters();
  const std::size_t p_count =
      static_cast<std::size_t>(nn::total_size(global_params));
  const double expected_cohort =
      config_.client_sample_prob * static_cast<double>(population_->size());

  std::vector<DpRoundStats> history;
  history.reserve(static_cast<std::size_t>(config_.rounds));

  ckpt::TrainerGuard guard(config_.checkpoint, config_.health, "dp_fedavg");
  const ckpt::PayloadWriter save = [this](BinaryWriter& w) { save_state(w); };
  const ckpt::PayloadReader load = [this](BinaryReader& r) { load_state(r); };
  const std::int64_t start_round = guard.begin(save, load) + 1;

  for (std::int64_t round = start_round; round <= config_.rounds; ++round) {
    MDL_OBS_SPAN_T("dp_fedavg.round", obs::track_round(round));
    const std::vector<float> w_global = nn::flatten_values(global_params);
    std::vector<double> update_sum(p_count, 0.0);
    const std::uint64_t broadcast_wire =
        wire_ != nullptr ? wire_->dense_wire_bytes(w_global)
                         : static_cast<std::uint64_t>(p_count) * 4;

    DpRoundStats stats;
    stats.round = round;
    double round_loss = 0.0;
    std::int64_t clients_run = 0;

    // Prologue (sequential): modification 1 — independent sampling — and
    // the per-client RNG forks, both consuming rng_ in fixed order so the
    // stream matches the serial formulation exactly.
    std::vector<std::size_t> participants;
    std::vector<Rng> client_rngs;
    bool aborted = false;
    if (net_ != nullptr) {
      // The sampled cohort runs the gauntlet of the fault plan. Lost
      // updates just shrink the realized cohort — the fixed-denominator
      // estimator keeps the sensitivity bound, so no DP correction is
      // needed.
      const std::vector<std::size_t> sampled = federated::
          sample_bernoulli_cohort(rng_, population_->size(),
                                  config_.client_sample_prob);
      // With a wire codec the exchange is sized by the encoded broadcast —
      // the clipped deltas' exact encoded sizes only exist after training
      // and are billed to the sim.bytes_up_compressed counter below.
      const sim::RoundReport report =
          net_->run_round(round, sampled, broadcast_wire, broadcast_wire);
      aborted = report.aborted;
      stats.clients_selected = static_cast<std::int64_t>(sampled.size());
      stats.clients_delivered = report.delivered;
      stats.aborted = aborted;
      if (!aborted)
        for (const sim::ClientExchange& ex : report.clients)
          if (ex.delivered()) {
            participants.push_back(ex.client);
            client_rngs.push_back(rng_.fork());
          }
    } else {
      participants = federated::sample_bernoulli_cohort(
          rng_, population_->size(), config_.client_sample_prob);
      stats.clients_selected = static_cast<std::int64_t>(participants.size());
      client_rngs.reserve(participants.size());
      for (std::size_t c = 0; c < participants.size(); ++c)
        client_rngs.push_back(rng_.fork());
      stats.clients_delivered = stats.clients_selected;
    }

    // Parallel phase: participants are partitioned into
    // min(cohort, agg_shards) contiguous chunks; each chunk trains its
    // clients sequentially in a reused workspace, clipping every update to
    // S (modification 2) and streaming it into a private double
    // accumulator. Chunk accumulators reduce in fixed order after the
    // join, so the aggregate is bit-identical at every thread count (and
    // to the sequential sum whenever cohort <= agg_shards).
    const std::size_t n_clients = participants.size();
    const std::vector<federated::ChunkRange> chunks = federated::chunk_ranges(
        n_clients, static_cast<std::size_t>(config_.agg_shards));
    ensure_client_workers(chunks.size());
    std::vector<double> client_loss(n_clients, 0.0);
    std::vector<double> client_us(n_clients, 0.0);
    std::vector<std::uint64_t> delta_wire(n_clients, 0);
    std::vector<std::vector<double>> chunk_acc(chunks.size());
    parallel_for(shared_pool(), chunks.size(), [&](std::size_t s) {
      nn::Sequential& worker = *client_workers_[s];
      const auto worker_params = worker.parameters();
      data::TabularDataset& scratch = shard_scratch_[s];
      std::vector<double>& acc = chunk_acc[s];
      acc.assign(p_count, 0.0);
      for (std::size_t c = chunks[s].begin; c < chunks[s].end; ++c) {
        MDL_OBS_SPAN_T("client_update",
                       obs::track_round_client(round, participants[c]));
        const auto t0 = std::chrono::steady_clock::now();
        nn::unflatten_into_values(w_global, worker_params);
        client_loss[c] = federated::local_sgd(
            worker, population_->shard(participants[c], scratch),
            config_.local_epochs, config_.batch_size, config_.client_lr,
            client_rngs[c]);
        std::vector<float> update = nn::flatten_values(worker_params);
        for (std::size_t i = 0; i < p_count; ++i) update[i] -= w_global[i];
        nn::clip_l2(update, config_.clip_norm);  // modification 2
        // Encoded size of the DP-clipped delta this client would upload;
        // the codec encode is pure, so the call is race-free.
        if (wire_ != nullptr) delta_wire[c] = wire_->dense_wire_bytes(update);
        for (std::size_t i = 0; i < p_count; ++i)
          acc[i] += static_cast<double>(update[i]);
        client_us[c] = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      }
    });
    for (const std::vector<double>& acc : chunk_acc)
      for (std::size_t i = 0; i < acc.size(); ++i) update_sum[i] += acc[i];
    for (std::size_t c = 0; c < n_clients; ++c) {
      round_loss += client_loss[c];
      ++clients_run;
      MDL_OBS_HISTOGRAM_OBSERVE("dp_fedavg.client_us", client_us[c]);
    }
    if (wire_ != nullptr) {
      std::uint64_t up_wire = 0;
      for (const std::uint64_t b : delta_wire) up_wire += b;
      const std::uint64_t n = n_clients;
      MDL_OBS_COUNTER_ADD("sim.bytes_up_compressed", up_wire);
      MDL_OBS_COUNTER_ADD("sim.bytes_down_compressed", n * broadcast_wire);
      MDL_OBS_COUNTER_ADD("sim.bytes_up_raw",
                          n * static_cast<std::uint64_t>(p_count) * 4);
      MDL_OBS_COUNTER_ADD("sim.bytes_down_raw",
                          n * static_cast<std::uint64_t>(p_count) * 4);
    }

    if (!aborted) {
      // Modifications 3 + 4: fixed-denominator estimator + Gaussian noise
      // of stddev z * S / (p K) on the averaged update.
      const double sigma =
          config_.noise_multiplier * config_.clip_norm / expected_cohort;
      std::vector<float> w_next(p_count);
      for (std::size_t i = 0; i < p_count; ++i) {
        const double avg_update = update_sum[i] / expected_cohort +
                                  rng_.normal(0.0, sigma);
        w_next[i] = w_global[i] + static_cast<float>(avg_update);
      }
      nn::unflatten_into_values(w_next, global_params);

      if (config_.noise_multiplier > 0.0)
        accountant_.add_steps(1, config_.client_sample_prob,
                              config_.noise_multiplier);
    }
    // An aborted round releases nothing: the global model is unchanged and
    // the moments accountant is not charged.

    stats.train_loss =
        clients_run > 0 ? round_loss / static_cast<double>(clients_run) : 0.0;
    stats.test_accuracy = federated::evaluate_accuracy(*global_, test);
    stats.epsilon = config_.noise_multiplier > 0.0
                        ? accountant_.epsilon(config_.delta)
                        : std::numeric_limits<double>::infinity();

    // Health gate over the released model. The noisy release can contain
    // non-finite values if training blew up; rollback also rewinds the
    // accountant so the undone round's budget charge is not double-counted.
    const std::vector<float> w_now = nn::flatten_values(global_params);
    const std::optional<double> health_loss =
        clients_run > 0 ? std::optional<double>(stats.train_loss)
                        : std::nullopt;
    const ckpt::TrainerGuard::Verdict verdict =
        guard.end_of_round(round, health_loss, w_now, save, load);
    stats.rolled_back = verdict.rolled_back;
    history.push_back(stats);

    if (verdict.rolled_back) {
      if (verdict.give_up) break;
      config_.client_lr *=
          std::pow(verdict.lr_scale, static_cast<double>(guard.rollbacks()));
      round = verdict.resume_round;
    }
  }
  return history;
}

}  // namespace mdl::privacy
