// Private Aggregation of Teacher Ensembles (Papernot et al., ICLR'17) —
// the third privacy-preserving training approach §II-C describes: "a
// student model [is trained] to predict an output chosen by noisy voting
// among all of the teacher models which are trained by the sensitive data
// locally. The individual teacher model and its parameters are
// inaccessible."
//
// The sensitive dataset is partitioned disjointly among teachers; each
// teacher trains privately. Labeling a public example adds Laplace noise
// to the per-class vote counts (LNMax) and releases only the arg-max.
// Changing one sensitive example can change at most one teacher's vote,
// i.e. two counts by 1 each, so each query is (2 / noise_scale)-DP; the
// ensemble tracks the total budget under basic composition.
#pragma once

#include <memory>

#include "federated/common.hpp"

namespace mdl::privacy {

struct PateConfig {
  std::size_t num_teachers = 10;
  std::int64_t teacher_epochs = 10;
  std::int64_t batch_size = 16;
  double lr = 0.1;
  /// Laplace scale b on each vote count; per-query epsilon = 2 / b.
  double noise_scale = 2.0;
  std::uint64_t seed = 37;
};

/// Teacher ensemble with a differentially private labeling interface.
class PateEnsemble {
 public:
  /// Partitions `sensitive` into `num_teachers` disjoint IID shards and
  /// trains one model per shard.
  PateEnsemble(federated::ModelFactory factory,
               const data::TabularDataset& sensitive, PateConfig config);

  /// Raw (non-private) per-class vote counts for one feature row —
  /// diagnostic only; never released in the private protocol.
  std::vector<std::int64_t> vote_counts(const Tensor& row) const;

  /// Differentially private label for one [1, D] feature row (LNMax).
  std::int64_t noisy_label(const Tensor& row);

  /// Labels a public feature matrix, consuming one query per row.
  data::TabularDataset label_public(const Tensor& features);

  /// Per-query epsilon (= 2 / noise_scale).
  double epsilon_per_query() const { return 2.0 / config_.noise_scale; }
  /// Total budget under basic composition.
  double epsilon_spent() const {
    return static_cast<double>(queries_) * epsilon_per_query();
  }
  std::int64_t queries() const { return queries_; }
  std::size_t num_teachers() const { return teachers_.size(); }
  std::int64_t num_classes() const { return classes_; }

 private:
  PateConfig config_;
  std::int64_t classes_;
  std::vector<std::unique_ptr<nn::Sequential>> teachers_;
  Rng rng_;
  std::int64_t queries_ = 0;
};

/// End-to-end PATE: trains the teacher ensemble on `sensitive`, privately
/// labels `public_features`, trains a student on the noisy labels, and
/// returns the student's accuracy on `test` plus the spent budget.
struct PateResult {
  double student_accuracy = 0.0;
  double epsilon = 0.0;
  double label_agreement = 0.0;  ///< noisy labels matching true labels
};
PateResult run_pate(federated::ModelFactory factory,
                    const data::TabularDataset& sensitive,
                    const data::TabularDataset& public_set,
                    const data::TabularDataset& test,
                    const PateConfig& config);

}  // namespace mdl::privacy
