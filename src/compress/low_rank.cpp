#include "compress/low_rank.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "nn/activations.hpp"
#include "nn/dropout.hpp"

namespace mdl::compress {

Svd svd_jacobi(const Tensor& a, int max_sweeps, double tol) {
  MDL_CHECK(a.ndim() == 2, "svd needs a 2-D tensor, got " << a.shape_str());
  const std::int64_t m = a.shape(0);
  const std::int64_t n = a.shape(1);

  // Work on the tall orientation; transpose back at the end.
  if (m < n) {
    Svd t = svd_jacobi(a.transposed(), max_sweeps, tol);
    return {std::move(t.v), std::move(t.s), std::move(t.u)};
  }

  // Columns of `work` are rotated until pairwise orthogonal; `v`
  // accumulates the same rotations applied to the identity.
  std::vector<double> work(static_cast<std::size_t>(m * n));
  for (std::int64_t i = 0; i < m * n; ++i) work[static_cast<std::size_t>(i)] = a[i];
  std::vector<double> v(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t j = 0; j < n; ++j) v[static_cast<std::size_t>(j * n + j)] = 1.0;

  auto col_dot = [&](std::int64_t p, std::int64_t q) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < m; ++i)
      acc += work[static_cast<std::size_t>(i * n + p)] *
             work[static_cast<std::size_t>(i * n + q)];
    return acc;
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::int64_t p = 0; p < n - 1; ++p) {
      for (std::int64_t q = p + 1; q < n; ++q) {
        const double app = col_dot(p, p);
        const double aqq = col_dot(q, q);
        const double apq = col_dot(p, q);
        if (std::abs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0)
          continue;
        converged = false;
        // Jacobi rotation zeroing the (p, q) off-diagonal of A^T A.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(tau) + std::sqrt(1.0 + tau * tau)), tau);
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::int64_t i = 0; i < m; ++i) {
          const double wp = work[static_cast<std::size_t>(i * n + p)];
          const double wq = work[static_cast<std::size_t>(i * n + q)];
          work[static_cast<std::size_t>(i * n + p)] = c * wp - s * wq;
          work[static_cast<std::size_t>(i * n + q)] = s * wp + c * wq;
        }
        for (std::int64_t i = 0; i < n; ++i) {
          const double vp = v[static_cast<std::size_t>(i * n + p)];
          const double vq = v[static_cast<std::size_t>(i * n + q)];
          v[static_cast<std::size_t>(i * n + p)] = c * vp - s * vq;
          v[static_cast<std::size_t>(i * n + q)] = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Singular values = column norms; U = normalized columns.
  std::vector<double> sigma(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j)
    sigma[static_cast<std::size_t>(j)] = std::sqrt(col_dot(j, j));

  // Sort descending.
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), std::int64_t{0});
  std::sort(order.begin(), order.end(), [&](std::int64_t x, std::int64_t y) {
    return sigma[static_cast<std::size_t>(x)] > sigma[static_cast<std::size_t>(y)];
  });

  Svd out;
  out.u = Tensor({m, n});
  out.s = Tensor({n});
  out.v = Tensor({n, n});
  for (std::int64_t jj = 0; jj < n; ++jj) {
    const std::int64_t j = order[static_cast<std::size_t>(jj)];
    const double sg = sigma[static_cast<std::size_t>(j)];
    out.s[jj] = static_cast<float>(sg);
    const double inv = sg > 1e-30 ? 1.0 / sg : 0.0;
    for (std::int64_t i = 0; i < m; ++i)
      out.u[i * n + jj] = static_cast<float>(
          work[static_cast<std::size_t>(i * n + j)] * inv);
    for (std::int64_t i = 0; i < n; ++i)
      out.v[i * n + jj] =
          static_cast<float>(v[static_cast<std::size_t>(i * n + j)]);
  }
  return out;
}

Tensor low_rank_approx(const Svd& svd, std::int64_t rank) {
  const std::int64_t m = svd.u.shape(0);
  const std::int64_t n = svd.v.shape(0);
  const std::int64_t r = std::min<std::int64_t>(rank, svd.s.shape(0));
  MDL_CHECK(r > 0, "rank must be positive");
  Tensor out({m, n});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < r; ++k)
        acc += static_cast<double>(svd.u[i * svd.u.shape(1) + k]) * svd.s[k] *
               svd.v[j * svd.v.shape(1) + k];
      out[i * n + j] = static_cast<float>(acc);
    }
  return out;
}

std::pair<Tensor, Tensor> factorize_weight(const Tensor& w,
                                           std::int64_t rank) {
  MDL_CHECK(w.ndim() == 2, "factorize_weight needs a matrix");
  const std::int64_t out_f = w.shape(0);
  const std::int64_t in_f = w.shape(1);
  const Svd svd = svd_jacobi(w);
  const std::int64_t r = std::min<std::int64_t>(rank, svd.s.shape(0));
  MDL_CHECK(r > 0, "rank must be positive");
  Tensor b({out_f, r});  // U_r diag(S_r)
  Tensor a({r, in_f});   // V_r^T
  for (std::int64_t i = 0; i < out_f; ++i)
    for (std::int64_t k = 0; k < r; ++k)
      b[i * r + k] = svd.u[i * svd.u.shape(1) + k] * svd.s[k];
  for (std::int64_t k = 0; k < r; ++k)
    for (std::int64_t j = 0; j < in_f; ++j)
      a[k * in_f + j] = svd.v[j * svd.v.shape(1) + k];
  return {std::move(b), std::move(a)};
}

std::unique_ptr<nn::Sequential> low_rank_factorize_mlp(nn::Sequential& model,
                                                       std::int64_t rank,
                                                       Rng& rng) {
  MDL_CHECK(rank > 0, "rank must be positive");
  auto out = std::make_unique<nn::Sequential>();
  for (std::size_t i = 0; i < model.size(); ++i) {
    nn::Module& layer = model.layer(i);
    if (auto* lin = dynamic_cast<nn::Linear*>(&layer)) {
      const std::int64_t in_f = lin->in_features();
      const std::int64_t out_f = lin->out_features();
      if (std::min(in_f, out_f) <= rank) {
        // Not worth factorizing; copy as-is.
        auto& copy = out->emplace<nn::Linear>(in_f, out_f, rng,
                                              lin->has_bias());
        copy.weight().value = lin->weight().value;
        if (lin->has_bias()) copy.bias().value = lin->bias().value;
        continue;
      }
      auto [b, a] = factorize_weight(lin->weight().value, rank);
      auto& first = out->emplace<nn::Linear>(in_f, rank, rng, false);
      first.weight().value = std::move(a);
      auto& second =
          out->emplace<nn::Linear>(rank, out_f, rng, lin->has_bias());
      second.weight().value = std::move(b);
      if (lin->has_bias()) second.bias().value = lin->bias().value;
    } else if (dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
      out->emplace<nn::ReLU>();
    } else if (dynamic_cast<nn::Sigmoid*>(&layer) != nullptr) {
      out->emplace<nn::Sigmoid>();
    } else if (dynamic_cast<nn::Tanh*>(&layer) != nullptr) {
      out->emplace<nn::Tanh>();
    } else {
      MDL_FAIL("low_rank_factorize_mlp cannot rebuild layer "
               << layer.name());
    }
  }
  return out;
}

std::int64_t low_rank_param_count(std::int64_t out, std::int64_t in,
                                  std::int64_t rank) {
  return rank * (out + in);
}

}  // namespace mdl::compress
