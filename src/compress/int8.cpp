#include "compress/int8.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/gemm.hpp"
#include "nn/activations.hpp"
#include "nn/dropout.hpp"

namespace mdl::compress {

ActQuant choose_act_quant(const float* x, std::int64_t n) {
  // Asymmetric range forced to include 0 so a 0.0 activation is exactly
  // representable (ReLU outputs, padding). An all-zero row degenerates to
  // scale 1 / zero point 0.
  float lo = 0.0F;
  float hi = 0.0F;
  for (std::int64_t c = 0; c < n; ++c) {
    lo = std::min(lo, x[c]);
    hi = std::max(hi, x[c]);
  }
  ActQuant aq;
  if (hi > lo) {
    aq.scale = (hi - lo) / 255.0F;
    aq.zero_point = static_cast<std::int32_t>(
        std::clamp(std::round(-lo / aq.scale), 0.0F, 255.0F));
  }
  return aq;
}

void quantize_act_row(const float* x, std::int64_t n, const ActQuant& aq,
                      std::uint8_t* out) {
  for (std::int64_t c = 0; c < n; ++c) {
    const float q = std::round(x[c] / aq.scale) +
                    static_cast<float>(aq.zero_point);
    out[c] = static_cast<std::uint8_t>(std::clamp(q, 0.0F, 255.0F));
  }
}

Int8Linear::Int8Linear(const nn::Linear& linear)
    : in_(linear.in_features()),
      out_(linear.out_features()),
      weights_(static_cast<std::size_t>(in_ * out_)),
      row_scales_(static_cast<std::size_t>(out_)),
      row_sums_(static_cast<std::size_t>(out_)) {
  const Tensor& w = linear.weight().value;
  for (std::int64_t r = 0; r < out_; ++r) {
    float max_abs = 0.0F;
    for (std::int64_t c = 0; c < in_; ++c)
      max_abs = std::max(max_abs, std::abs(w[r * in_ + c]));
    const float scale = max_abs > 0.0F ? max_abs / 127.0F : 1.0F;
    row_scales_[static_cast<std::size_t>(r)] = scale;
    std::int32_t row_sum = 0;
    for (std::int64_t c = 0; c < in_; ++c) {
      const float q = std::round(w[r * in_ + c] / scale);
      const auto qi =
          static_cast<std::int8_t>(std::clamp(q, -127.0F, 127.0F));
      weights_[static_cast<std::size_t>(r * in_ + c)] = qi;
      row_sum += qi;
    }
    // Precomputed once per weight: the zero-point correction term of
    // gemm::int8_gemm_nt needs sum_c W[r,c] for every output row.
    row_sums_[static_cast<std::size_t>(r)] = row_sum;
  }
  if (linear.has_bias()) {
    const Tensor& b = const_cast<nn::Linear&>(linear).bias().value;
    bias_.assign(b.data(), b.data() + b.size());
  }
}

Tensor Int8Linear::forward(const Tensor& x) { return infer(x); }

Tensor Int8Linear::infer(const Tensor& x) const {
  MDL_CHECK(x.ndim() == 2 && x.shape(1) == in_,
            "Int8Linear(" << in_ << "->" << out_ << ") got "
                          << x.shape_str());
  const std::int64_t batch = x.shape(0);

  // Quantize every activation row (asymmetric uint8, per-row params)...
  std::vector<std::uint8_t> xq(static_cast<std::size_t>(batch * in_));
  std::vector<std::int32_t> za(static_cast<std::size_t>(batch));
  std::vector<float> x_scales(static_cast<std::size_t>(batch));
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* xin = x.data() + n * in_;
    const ActQuant aq = choose_act_quant(xin, in_);
    quantize_act_row(xin, in_, aq, xq.data() + n * in_);
    za[static_cast<std::size_t>(n)] = aq.zero_point;
    x_scales[static_cast<std::size_t>(n)] = aq.scale;
  }

  // ...then one integer GEMM for the whole batch. int8_gemm_nt applies the
  // zero-point correction (acc -= za[n] * row_sums_[r]) so `acc` is
  // sum_c (q[n,c] - za[n]) * W[r,c] — exact int32, identical across the
  // scalar and AVX2 kernels.
  std::vector<std::int32_t> acc(static_cast<std::size_t>(batch * out_));
  gemm::int8_gemm_nt(xq.data(), weights_.data(), acc.data(), batch, in_,
                     out_, za.data(), row_sums_.data());

  Tensor y({batch, out_});
  for (std::int64_t n = 0; n < batch; ++n) {
    const float xs = x_scales[static_cast<std::size_t>(n)];
    for (std::int64_t r = 0; r < out_; ++r) {
      float out = static_cast<float>(acc[static_cast<std::size_t>(
                      n * out_ + r)]) *
                  row_scales_[static_cast<std::size_t>(r)] * xs;
      if (!bias_.empty()) out += bias_[static_cast<std::size_t>(r)];
      y[n * out_ + r] = out;
    }
  }
  return y;
}

Tensor Int8Linear::backward(const Tensor& /*grad_out*/) {
  MDL_FAIL("Int8Linear is inference-only (train in float, then quantize)");
}

std::string Int8Linear::name() const {
  std::ostringstream os;
  os << "Int8Linear(" << in_ << "->" << out_ << ')';
  return os.str();
}

std::int64_t Int8Linear::flops_per_example() const {
  return 2 * in_ * out_ + (bias_.empty() ? 0 : out_);
}

std::uint64_t Int8Linear::storage_bytes() const {
  return weights_.size() + row_scales_.size() * 4 + row_sums_.size() * 4 +
         bias_.size() * 4;
}

Tensor Int8Linear::dequantized_weight() const {
  Tensor w({out_, in_});
  for (std::int64_t r = 0; r < out_; ++r)
    for (std::int64_t c = 0; c < in_; ++c)
      w[r * in_ + c] =
          static_cast<float>(weights_[static_cast<std::size_t>(r * in_ + c)]) *
          row_scales_[static_cast<std::size_t>(r)];
  return w;
}

std::unique_ptr<nn::Sequential> int8_quantize_mlp(nn::Sequential& model) {
  auto out = std::make_unique<nn::Sequential>();
  for (std::size_t i = 0; i < model.size(); ++i) {
    nn::Module& layer = model.layer(i);
    if (auto* lin = dynamic_cast<nn::Linear*>(&layer)) {
      out->append(std::make_unique<Int8Linear>(*lin));
    } else if (dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
      out->emplace<nn::ReLU>();
    } else if (dynamic_cast<nn::Sigmoid*>(&layer) != nullptr) {
      out->emplace<nn::Sigmoid>();
    } else if (dynamic_cast<nn::Tanh*>(&layer) != nullptr) {
      out->emplace<nn::Tanh>();
    } else if (dynamic_cast<nn::Dropout*>(&layer) != nullptr) {
      // Dropout is identity at inference; drop it from the deployed graph.
    } else {
      MDL_FAIL("int8_quantize_mlp cannot rebuild layer " << layer.name());
    }
  }
  out->set_training(false);
  return out;
}

}  // namespace mdl::compress
