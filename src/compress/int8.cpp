#include "compress/int8.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "nn/activations.hpp"
#include "nn/dropout.hpp"

namespace mdl::compress {

Int8Linear::Int8Linear(const nn::Linear& linear)
    : in_(linear.in_features()),
      out_(linear.out_features()),
      weights_(static_cast<std::size_t>(in_ * out_)),
      row_scales_(static_cast<std::size_t>(out_)) {
  const Tensor& w = linear.weight().value;
  for (std::int64_t r = 0; r < out_; ++r) {
    float max_abs = 0.0F;
    for (std::int64_t c = 0; c < in_; ++c)
      max_abs = std::max(max_abs, std::abs(w[r * in_ + c]));
    const float scale = max_abs > 0.0F ? max_abs / 127.0F : 1.0F;
    row_scales_[static_cast<std::size_t>(r)] = scale;
    for (std::int64_t c = 0; c < in_; ++c) {
      const float q = std::round(w[r * in_ + c] / scale);
      weights_[static_cast<std::size_t>(r * in_ + c)] =
          static_cast<std::int8_t>(std::clamp(q, -127.0F, 127.0F));
    }
  }
  if (linear.has_bias()) {
    const Tensor& b = const_cast<nn::Linear&>(linear).bias().value;
    bias_.assign(b.data(), b.data() + b.size());
  }
}

Tensor Int8Linear::forward(const Tensor& x) {
  MDL_CHECK(x.ndim() == 2 && x.shape(1) == in_,
            "Int8Linear(" << in_ << "->" << out_ << ") got "
                          << x.shape_str());
  const std::int64_t batch = x.shape(0);
  Tensor y({batch, out_});
  std::vector<std::int8_t> xq(static_cast<std::size_t>(in_));
  for (std::int64_t n = 0; n < batch; ++n) {
    // Dynamic per-row activation quantization (symmetric).
    const float* xin = x.data() + n * in_;
    float max_abs = 0.0F;
    for (std::int64_t c = 0; c < in_; ++c)
      max_abs = std::max(max_abs, std::abs(xin[c]));
    const float x_scale = max_abs > 0.0F ? max_abs / 127.0F : 1.0F;
    for (std::int64_t c = 0; c < in_; ++c)
      xq[static_cast<std::size_t>(c)] = static_cast<std::int8_t>(
          std::clamp(std::round(xin[c] / x_scale), -127.0F, 127.0F));

    for (std::int64_t r = 0; r < out_; ++r) {
      // Integer hot loop: int8 x int8 -> int32 accumulate.
      const std::int8_t* wrow = weights_.data() + r * in_;
      std::int32_t acc = 0;
      for (std::int64_t c = 0; c < in_; ++c)
        acc += static_cast<std::int32_t>(wrow[c]) *
               static_cast<std::int32_t>(xq[static_cast<std::size_t>(c)]);
      float out = static_cast<float>(acc) *
                  row_scales_[static_cast<std::size_t>(r)] * x_scale;
      if (!bias_.empty()) out += bias_[static_cast<std::size_t>(r)];
      y[n * out_ + r] = out;
    }
  }
  return y;
}

Tensor Int8Linear::backward(const Tensor& /*grad_out*/) {
  MDL_FAIL("Int8Linear is inference-only (train in float, then quantize)");
}

std::string Int8Linear::name() const {
  std::ostringstream os;
  os << "Int8Linear(" << in_ << "->" << out_ << ')';
  return os.str();
}

std::int64_t Int8Linear::flops_per_example() const {
  return 2 * in_ * out_ + (bias_.empty() ? 0 : out_);
}

std::uint64_t Int8Linear::storage_bytes() const {
  return weights_.size() + row_scales_.size() * 4 + bias_.size() * 4;
}

Tensor Int8Linear::dequantized_weight() const {
  Tensor w({out_, in_});
  for (std::int64_t r = 0; r < out_; ++r)
    for (std::int64_t c = 0; c < in_; ++c)
      w[r * in_ + c] =
          static_cast<float>(weights_[static_cast<std::size_t>(r * in_ + c)]) *
          row_scales_[static_cast<std::size_t>(r)];
  return w;
}

std::unique_ptr<nn::Sequential> int8_quantize_mlp(nn::Sequential& model) {
  auto out = std::make_unique<nn::Sequential>();
  for (std::size_t i = 0; i < model.size(); ++i) {
    nn::Module& layer = model.layer(i);
    if (auto* lin = dynamic_cast<nn::Linear*>(&layer)) {
      out->append(std::make_unique<Int8Linear>(*lin));
    } else if (dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
      out->emplace<nn::ReLU>();
    } else if (dynamic_cast<nn::Sigmoid*>(&layer) != nullptr) {
      out->emplace<nn::Sigmoid>();
    } else if (dynamic_cast<nn::Tanh*>(&layer) != nullptr) {
      out->emplace<nn::Tanh>();
    } else if (dynamic_cast<nn::Dropout*>(&layer) != nullptr) {
      // Dropout is identity at inference; drop it from the deployed graph.
    } else {
      MDL_FAIL("int8_quantize_mlp cannot rebuild layer " << layer.name());
    }
  }
  out->set_training(false);
  return out;
}

}  // namespace mdl::compress
