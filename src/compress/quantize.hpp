// Network quantization by k-means weight sharing (Han et al., ICLR'16) —
// stage 2 of Deep Compression: surviving weights are clustered into a
// 2^bits-entry codebook and stored as small integer indices.
#pragma once

#include <cstdint>
#include <vector>

#include "core/random.hpp"
#include "core/serialize.hpp"
#include "core/tensor.hpp"

namespace mdl::compress {

/// A tensor stored as codebook + per-element codebook indices. Zero entries
/// (pruned weights) keep a dedicated index 0 mapped to exactly 0.0f so
/// pruning survives quantization.
struct QuantizedTensor {
  std::vector<std::int64_t> shape;
  std::vector<float> codebook;          ///< codebook[0] == 0.0f reserved
  std::vector<std::uint32_t> indices;   ///< one per element
  int bits = 8;                         ///< index width used for storage math

  Tensor dequantize() const;
  std::int64_t size() const;
  /// Deployable bytes: packed indices at `bits` each + f32 codebook.
  std::uint64_t storage_bytes() const;
  /// Largest |original - dequantized| given the original tensor.
  float max_error(const Tensor& original) const;
};

struct QuantizeConfig {
  int bits = 6;                  ///< codebook holds 2^bits - 1 nonzero levels
  int kmeans_iterations = 25;
  std::uint64_t seed = 3;
};

/// 1-D Lloyd k-means over the non-zero entries with linear (min..max)
/// initialization, as in the Deep Compression paper.
QuantizedTensor quantize_kmeans(const Tensor& t, const QuantizeConfig& config);

/// Serialization (used by the Deep Compression artifact writer).
void write_quantized(BinaryWriter& w, const QuantizedTensor& q);
QuantizedTensor read_quantized(BinaryReader& r);

}  // namespace mdl::compress
