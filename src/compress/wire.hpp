// QuantizedWireCodec — the quantize + entropy-code shim that prices
// federated payloads in real encoded bytes (§II-B's communication budget,
// compressed the way a mobile client actually would: 8-bit linear
// quantization of the floats, varint-delta coordinates for sparse top-k
// streams, then the BlockCodec Huffman+RLE stage over the packed bytes).
//
// The shim implements federated::WireCodec, so any trainer with
// attach_wire_codec() can have its SimNetwork exchanges and CommLedger
// billed by encoded size. It is a *pricing* layer: the trainer still
// applies exact float updates, so attaching a codec never changes the
// training trajectory — only the bytes-on-wire accounting (and, through
// SimNetwork's size-dependent latency/deadline model, the simulated radio
// schedule).
//
// Wire formats (little-endian, then BlockCodec::encode over the packed
// buffer):
//   dense:  [u32 count] [f32 scale] [count × zigzag(int8 q)] with
//           q = round(v / scale), scale = max|v| / 127 (scale 0 when all
//           zero — every byte is 0x00, which the RLE half eats).
//   sparse: [u32 k] [f32 scale] [k × LEB128 varint index delta]
//           [k × zigzag(int8 q)], indices strictly ascending.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "compress/codec.hpp"
#include "federated/common.hpp"

namespace mdl::compress {

class QuantizedWireCodec final : public federated::WireCodec {
 public:
  explicit QuantizedWireCodec(BlockCodecConfig config = {}) : codec_(config) {}

  std::uint64_t dense_wire_bytes(std::span<const float> values) const override;
  std::uint64_t sparse_wire_bytes(
      std::span<const std::pair<std::uint32_t, float>> coords) const override;

  /// The framed encoded stream itself (what dense_wire_bytes sizes).
  std::vector<std::uint8_t> encode_dense(std::span<const float> values) const;
  std::vector<std::uint8_t> encode_sparse(
      std::span<const std::pair<std::uint32_t, float>> coords) const;

  /// Inverse shims for the round-trip tests: decode + dequantize. Values
  /// come back within scale/2 of the originals; sparse indices exactly.
  static std::vector<float> decode_dense(std::span<const std::uint8_t> enc);
  static std::vector<std::pair<std::uint32_t, float>> decode_sparse(
      std::span<const std::uint8_t> enc);

  const BlockCodec& codec() const { return codec_; }

 private:
  BlockCodec codec_;
};

}  // namespace mdl::compress
