// Knowledge distillation (Hinton et al.) — §III-B's "model distillation":
// a small student mimics the softened outputs of a large teacher.
#pragma once

#include "data/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/module.hpp"

namespace mdl::compress {

struct DistillConfig {
  double temperature = 4.0;
  double alpha = 0.7;  ///< weight on the soft (teacher) loss
  std::int64_t epochs = 20;
  std::int64_t batch_size = 32;
  double lr = 0.05;
  std::uint64_t seed = 23;
};

/// Trains `student` against `teacher`'s logits on `train` with the mixed
/// KD objective; returns the student's accuracy on `test`.
double distill(nn::Sequential& teacher, nn::Sequential& student,
               const data::TabularDataset& train,
               const data::TabularDataset& test, const DistillConfig& config);

}  // namespace mdl::compress
