// Magnitude pruning (Han et al., NIPS'15) — "learning only the important
// connections", stage 1 of Deep Compression (§III-B).
#pragma once

#include <cstdint>
#include <span>

#include "core/tensor.hpp"
#include "nn/module.hpp"

namespace mdl::compress {

/// Zeroes the `sparsity` fraction of smallest-magnitude entries of `t`.
/// Returns the magnitude threshold used (entries with |v| <= threshold were
/// dropped, except as needed to hit the exact count).
float prune_by_magnitude(Tensor& t, double sparsity);

/// Prunes every *weight* parameter of the model (parameters whose tensor is
/// 2-D; biases are left dense, as in the original paper). Returns the
/// overall fraction of zeroed weights.
double prune_model(nn::Module& model, double sparsity);

/// Fraction of exactly-zero entries.
double measure_sparsity(const Tensor& t);
double measure_model_sparsity(nn::Module& model);

/// Re-applies the zero pattern of `mask_source` onto gradients so pruned
/// connections stay pruned during fine-tuning: call after backward, before
/// the optimizer step.
void mask_pruned_gradients(nn::Module& model);

}  // namespace mdl::compress
