// Magnitude pruning (Han et al., NIPS'15) — "learning only the important
// connections", stage 1 of Deep Compression (§III-B).
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "core/tensor.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace mdl::compress {

/// Zeroes the `sparsity` fraction of smallest-magnitude entries of `t`.
/// Returns the magnitude threshold used (entries with |v| <= threshold were
/// dropped, except as needed to hit the exact count).
float prune_by_magnitude(Tensor& t, double sparsity);

/// Prunes every *weight* parameter of the model (parameters whose tensor is
/// 2-D; biases are left dense, as in the original paper). Returns the
/// overall fraction of zeroed weights.
double prune_model(nn::Module& model, double sparsity);

/// Fraction of exactly-zero entries.
double measure_sparsity(const Tensor& t);
double measure_model_sparsity(nn::Module& model);

/// Re-applies the zero pattern of `mask_source` onto gradients so pruned
/// connections stay pruned during fine-tuning: call after backward, before
/// the optimizer step.
void mask_pruned_gradients(nn::Module& model);

/// Inference-only dense layer over pruned (dense-stored) weights, computed
/// through compress::pruned_matmul — the explicit zero-skip entry point
/// that replaced the branch the dense GEMM kernels used to carry. Output
/// matches the source Linear's forward exactly on finite inputs.
/// backward() throws.
class PrunedLinear : public nn::Module {
 public:
  explicit PrunedLinear(const nn::Linear& linear);

  Tensor forward(const Tensor& x) override;
  /// Const inference path — stateless, so it shares forward()'s kernel.
  /// Lets a pruned deployment form serve concurrent readers (e.g. as a
  /// split::DegradationLadder stage).
  Tensor infer(const Tensor& x) const override;
  [[noreturn]] Tensor backward(const Tensor& grad_out) override;
  std::string name() const override;
  std::int64_t flops_per_example() const override;

  double sparsity() const;
  /// Deployable bytes if the weights ship in CSR (+ dense f32 bias).
  std::uint64_t storage_bytes() const;

 private:
  std::int64_t in_;
  std::int64_t out_;
  Tensor weight_;  ///< [out, in], pruned, dense-stored
  Tensor bias_;    ///< [out], empty if none
};

/// Rebuilds a Sequential of Linear/activations with every Linear replaced
/// by its PrunedLinear (sparse-aware inference deployment form).
std::unique_ptr<nn::Sequential> sparse_deploy_mlp(nn::Sequential& model);

}  // namespace mdl::compress
