#include "compress/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mdl::compress {

Tensor QuantizedTensor::dequantize() const {
  Tensor out(shape);
  MDL_CHECK(static_cast<std::size_t>(out.size()) == indices.size(),
            "index count does not match shape");
  for (std::int64_t i = 0; i < out.size(); ++i) {
    const std::uint32_t idx = indices[static_cast<std::size_t>(i)];
    MDL_CHECK(idx < codebook.size(), "codebook index out of range");
    out[i] = codebook[idx];
  }
  return out;
}

std::int64_t QuantizedTensor::size() const {
  std::int64_t n = 1;
  for (std::int64_t d : shape) n *= d;
  return n;
}

std::uint64_t QuantizedTensor::storage_bytes() const {
  const std::uint64_t index_bits =
      static_cast<std::uint64_t>(indices.size()) * static_cast<std::uint64_t>(bits);
  return (index_bits + 7) / 8 +
         static_cast<std::uint64_t>(codebook.size()) * 4;
}

float QuantizedTensor::max_error(const Tensor& original) const {
  const Tensor deq = dequantize();
  return max_abs_diff(deq, original);
}

QuantizedTensor quantize_kmeans(const Tensor& t,
                                const QuantizeConfig& config) {
  MDL_CHECK(config.bits >= 1 && config.bits <= 16,
            "bits must be in [1, 16], got " << config.bits);
  MDL_CHECK(config.kmeans_iterations > 0, "need >= 1 k-means iteration");

  QuantizedTensor q;
  q.shape = t.shape();
  q.bits = config.bits;
  q.indices.resize(static_cast<std::size_t>(t.size()));

  // Collect non-zero values; index 0 is reserved for exact zero.
  std::vector<float> nz;
  nz.reserve(static_cast<std::size_t>(t.size()));
  for (std::int64_t i = 0; i < t.size(); ++i)
    if (t[i] != 0.0F) nz.push_back(t[i]);

  const std::size_t k = std::min<std::size_t>(
      (std::size_t{1} << config.bits) - 1, std::max<std::size_t>(nz.size(), 1));
  q.codebook.assign(k + 1, 0.0F);  // [0] = 0
  if (nz.empty()) return q;        // all-zero tensor

  // Linear initialization between min and max (Deep Compression found this
  // superior to random/density init for preserving large weights).
  const auto [mn_it, mx_it] = std::minmax_element(nz.begin(), nz.end());
  const float mn = *mn_it;
  const float mx = *mx_it;
  for (std::size_t c = 0; c < k; ++c) {
    q.codebook[c + 1] =
        k == 1 ? 0.5F * (mn + mx)
               : mn + (mx - mn) * static_cast<float>(c) /
                          static_cast<float>(k - 1);
  }

  // Lloyd iterations over the sorted values (1-D: nearest centroid found by
  // binary search over sorted centroids).
  std::vector<std::size_t> assign(nz.size());
  std::vector<double> sums(k);
  std::vector<std::int64_t> counts(k);
  for (int it = 0; it < config.kmeans_iterations; ++it) {
    std::vector<float> sorted(q.codebook.begin() + 1, q.codebook.end());
    std::sort(sorted.begin(), sorted.end());
    std::copy(sorted.begin(), sorted.end(), q.codebook.begin() + 1);

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < nz.size(); ++i) {
      const float v = nz[i];
      // Centroids q.codebook[1..k] are sorted ascending; the nearest is
      // either the first centroid >= v or its left neighbor.
      const auto ub =
          std::upper_bound(q.codebook.begin() + 1, q.codebook.end(), v);
      const auto hi = std::min<std::size_t>(
          static_cast<std::size_t>(ub - (q.codebook.begin() + 1)), k - 1);
      std::size_t best = hi;
      if (hi > 0 && std::abs(v - q.codebook[hi]) <=
                        std::abs(v - q.codebook[hi + 1]))
        best = hi - 1;
      assign[i] = best;
      sums[best] += v;
      ++counts[best];
    }
    for (std::size_t c = 0; c < k; ++c)
      if (counts[c] > 0)
        q.codebook[c + 1] =
            static_cast<float>(sums[c] / static_cast<double>(counts[c]));
  }

  // Final assignment pass over all elements.
  std::size_t nz_pos = 0;
  for (std::int64_t i = 0; i < t.size(); ++i) {
    if (t[i] == 0.0F) {
      q.indices[static_cast<std::size_t>(i)] = 0;
    } else {
      q.indices[static_cast<std::size_t>(i)] =
          static_cast<std::uint32_t>(assign[nz_pos++] + 1);
    }
  }
  return q;
}

void write_quantized(BinaryWriter& w, const QuantizedTensor& q) {
  w.write_u32(static_cast<std::uint32_t>(q.shape.size()));
  for (std::int64_t d : q.shape) w.write_i64(d);
  w.write_u8(static_cast<std::uint8_t>(q.bits));
  w.write_f32_vector(q.codebook);
  // Pack indices at q.bits per entry.
  std::vector<std::uint8_t> packed;
  packed.reserve((q.indices.size() * static_cast<std::size_t>(q.bits) + 7) / 8);
  std::uint64_t acc = 0;
  int acc_bits = 0;
  for (std::uint32_t idx : q.indices) {
    acc |= static_cast<std::uint64_t>(idx) << acc_bits;
    acc_bits += q.bits;
    while (acc_bits >= 8) {
      packed.push_back(static_cast<std::uint8_t>(acc & 0xFF));
      acc >>= 8;
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0) packed.push_back(static_cast<std::uint8_t>(acc & 0xFF));
  w.write_u64(q.indices.size());
  w.write_u64(packed.size());
  w.write_bytes(packed.data(), packed.size());
}

QuantizedTensor read_quantized(BinaryReader& r) {
  QuantizedTensor q;
  const std::uint32_t nd = r.read_u32();
  MDL_CHECK(nd <= 8, "implausible tensor rank");
  q.shape.resize(nd);
  for (auto& d : q.shape) d = r.read_i64();
  q.bits = r.read_u8();
  MDL_CHECK(q.bits >= 1 && q.bits <= 16, "implausible bit width " << q.bits);
  q.codebook = r.read_f32_vector();
  const std::uint64_t count = r.read_u64();
  const std::uint64_t packed_size = r.read_u64();
  std::vector<std::uint8_t> packed(packed_size);
  r.read_bytes(packed.data(), packed.size());
  q.indices.resize(count);
  std::uint64_t acc = 0;
  int acc_bits = 0;
  std::size_t byte_pos = 0;
  const std::uint64_t mask = (std::uint64_t{1} << q.bits) - 1;
  for (auto& idx : q.indices) {
    while (acc_bits < q.bits) {
      MDL_CHECK(byte_pos < packed.size(), "truncated packed indices");
      acc |= static_cast<std::uint64_t>(packed[byte_pos++]) << acc_bits;
      acc_bits += 8;
    }
    idx = static_cast<std::uint32_t>(acc & mask);
    acc >>= q.bits;
    acc_bits -= q.bits;
  }
  return q;
}

}  // namespace mdl::compress
