#include "compress/deep_compression.hpp"

#include "compress/sparse_matrix.hpp"

namespace mdl::compress {

std::uint64_t CompressedModel::quantized_bytes() const {
  std::uint64_t total = 0;
  for (const Entry& e : entries) {
    std::uint64_t count = 1;
    for (std::int64_t d : e.shape) count *= static_cast<std::uint64_t>(d);
    total += (count * static_cast<std::uint64_t>(e.bits) + 7) / 8 +
             e.codebook.size() * 4;
  }
  return total;
}

std::uint64_t CompressedModel::compressed_bytes() const {
  std::uint64_t total = 0;
  for (const Entry& e : entries)
    total += e.indices.storage_bytes() + e.codebook.size() * 4;
  return total;
}

void CompressedModel::restore_into(nn::Module& model) const {
  const auto params = model.parameters();
  MDL_CHECK(params.size() == entries.size(),
            "model has " << params.size() << " parameters, artifact has "
                         << entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    QuantizedTensor q;
    q.shape = e.shape;
    q.codebook = e.codebook;
    q.bits = e.bits;
    q.indices = huffman_decode(e.indices);
    Tensor restored = q.dequantize();
    MDL_CHECK(restored.same_shape(params[i]->value),
              "parameter " << i << " shape mismatch: artifact "
                           << restored.shape_str() << " vs model "
                           << params[i]->value.shape_str());
    params[i]->value = std::move(restored);
  }
}

CompressedModel compress_model(nn::Module& model,
                               const QuantizeConfig& config) {
  CompressedModel cm;
  for (nn::Parameter* p : model.parameters()) {
    QuantizeConfig cfg = config;
    if (p->value.ndim() < 2) cfg.bits = 8;  // biases: 8-bit, as in the paper
    const QuantizedTensor q = quantize_kmeans(p->value, cfg);
    CompressedModel::Entry e;
    e.shape = q.shape;
    e.codebook = q.codebook;
    e.bits = q.bits;
    e.indices = huffman_encode(
        q.indices, static_cast<std::uint32_t>(q.codebook.size()));
    cm.entries.push_back(std::move(e));
  }
  return cm;
}

std::uint64_t model_dense_bytes(nn::Module& model) {
  std::uint64_t total = 0;
  for (nn::Parameter* p : model.parameters())
    total += static_cast<std::uint64_t>(p->value.size()) * 4;
  return total;
}

std::uint64_t model_pruned_bytes(nn::Module& model) {
  std::uint64_t total = 0;
  for (nn::Parameter* p : model.parameters()) {
    if (p->value.ndim() == 2) {
      total += CsrMatrix::from_dense(p->value).storage_bytes();
    } else {
      total += static_cast<std::uint64_t>(p->value.size()) * 4;
    }
  }
  return total;
}

void write_compressed(BinaryWriter& w, const CompressedModel& cm) {
  write_archive_header(w, 2);
  w.write_u32(static_cast<std::uint32_t>(cm.entries.size()));
  for (const CompressedModel::Entry& e : cm.entries) {
    w.write_u32(static_cast<std::uint32_t>(e.shape.size()));
    for (std::int64_t d : e.shape) w.write_i64(d);
    w.write_u8(static_cast<std::uint8_t>(e.bits));
    w.write_f32_vector(e.codebook);
    w.write_u32(e.indices.alphabet_size);
    w.write_u64(e.indices.symbol_count);
    w.write_u64(e.indices.code_lengths.size());
    w.write_bytes(e.indices.code_lengths.data(), e.indices.code_lengths.size());
    w.write_u64(e.indices.payload.size());
    w.write_bytes(e.indices.payload.data(), e.indices.payload.size());
  }
}

CompressedModel read_compressed(BinaryReader& r) {
  const std::uint32_t version = read_archive_header(r);
  MDL_CHECK(version == 2, "unsupported artifact version " << version);
  CompressedModel cm;
  const std::uint32_t n = r.read_u32();
  cm.entries.resize(n);
  for (CompressedModel::Entry& e : cm.entries) {
    const std::uint32_t nd = r.read_u32();
    MDL_CHECK(nd <= 8, "implausible rank");
    e.shape.resize(nd);
    for (auto& d : e.shape) d = r.read_i64();
    e.bits = r.read_u8();
    e.codebook = r.read_f32_vector();
    e.indices.alphabet_size = r.read_u32();
    e.indices.symbol_count = r.read_u64();
    const std::uint64_t len_count = r.read_u64();
    MDL_CHECK(len_count < (1ULL << 24), "implausible code-length table");
    e.indices.code_lengths.resize(len_count);
    r.read_bytes(e.indices.code_lengths.data(), len_count);
    const std::uint64_t payload_size = r.read_u64();
    MDL_CHECK(payload_size < (1ULL << 32), "implausible payload");
    e.indices.payload.resize(payload_size);
    r.read_bytes(e.indices.payload.data(), payload_size);
  }
  return cm;
}

}  // namespace mdl::compress
