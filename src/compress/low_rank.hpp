// Low-rank factorization (§III-B): a fully connected layer's [out, in]
// weight is a 2-D matrix whose redundancy can be removed by a truncated
// SVD, replacing one Linear with two thin Linears
//   W ~= B A,   B = U_r diag(S_r) in [out, r],   A = V_r^T in [r, in],
// cutting both storage and multiply count from out*in to r*(out+in).
//
// The SVD itself is computed from scratch with one-sided Jacobi rotations —
// slow but simple, numerically robust, and exact enough for the layer sizes
// mobile models use.
#pragma once

#include <memory>
#include <utility>

#include "core/tensor.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace mdl::compress {

/// Thin SVD A = U diag(S) V^T with singular values sorted descending.
struct Svd {
  Tensor u;  ///< [m, r]
  Tensor s;  ///< [r]
  Tensor v;  ///< [n, r]
};

/// One-sided Jacobi SVD of a 2-D tensor. `max_sweeps` bounds the outer
/// iteration; convergence is declared when all column pairs are orthogonal
/// to within `tol` (relative).
Svd svd_jacobi(const Tensor& a, int max_sweeps = 60, double tol = 1e-12);

/// Rank-`rank` reconstruction U_r diag(S_r) V_r^T.
Tensor low_rank_approx(const Svd& svd, std::int64_t rank);

/// Splits weight [out, in] into {B [out, rank], A [rank, in]} with
/// W ~= B @ A (singular values folded into B).
std::pair<Tensor, Tensor> factorize_weight(const Tensor& w,
                                           std::int64_t rank);

/// Rebuilds a Sequential where every Linear whose min(in, out) exceeds
/// `rank` is replaced by the bias-free Linear(in->rank) followed by
/// Linear(rank->out) carrying the original bias. Other layers must be
/// stateless (activations/dropout are re-created as pass-through is not
/// possible, so this helper only accepts Linear / ReLU / Sigmoid / Tanh).
std::unique_ptr<nn::Sequential> low_rank_factorize_mlp(nn::Sequential& model,
                                                       std::int64_t rank,
                                                       Rng& rng);

/// Parameter count of the factorized form of one [out, in] layer.
std::int64_t low_rank_param_count(std::int64_t out, std::int64_t in,
                                  std::int64_t rank);

}  // namespace mdl::compress
