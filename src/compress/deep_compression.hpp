// The three-stage Deep Compression pipeline (Han, Mao & Dally, ICLR'16)
// cited by §III-B: magnitude pruning -> k-means weight sharing -> Huffman
// coding, with exact storage accounting at every stage. One simplification
// is documented in DESIGN.md: Huffman coding is applied to the full
// quantization-index stream (where the pruned-zero symbol dominates) rather
// than to separate relative-index streams; the entropy structure exploited
// is the same.
#pragma once

#include "compress/huffman.hpp"
#include "compress/quantize.hpp"
#include "nn/module.hpp"

namespace mdl::compress {

/// A fully compressed model: per parameter, a codebook plus Huffman-coded
/// index stream. Restorable into a live model for accuracy measurement.
struct CompressedModel {
  struct Entry {
    std::vector<std::int64_t> shape;
    std::vector<float> codebook;
    int bits = 0;
    HuffmanEncoded indices;
  };
  std::vector<Entry> entries;

  /// Bytes of the quantized-but-not-entropy-coded form (packed indices +
  /// codebooks) — the "P + Q" row of the compression table.
  std::uint64_t quantized_bytes() const;
  /// Bytes of the final artifact (Huffman payloads + tables + codebooks).
  std::uint64_t compressed_bytes() const;

  /// Writes parameter values back into `model` (shapes must match).
  void restore_into(nn::Module& model) const;
};

/// Quantizes every parameter of (a typically pruned) `model` and Huffman-
/// codes the index streams. Biases/1-D parameters are quantized at 8 bits
/// regardless of `config.bits`, as in the original paper.
CompressedModel compress_model(nn::Module& model,
                               const QuantizeConfig& config);

/// Uncompressed float32 size of all parameters.
std::uint64_t model_dense_bytes(nn::Module& model);

/// Size of the pruned model stored in CSR (2-D params) + dense (rest) —
/// the "P" row of the compression table.
std::uint64_t model_pruned_bytes(nn::Module& model);

/// Full artifact serialization (what would ship inside the mobile app).
void write_compressed(BinaryWriter& w, const CompressedModel& cm);
CompressedModel read_compressed(BinaryReader& r);

}  // namespace mdl::compress
