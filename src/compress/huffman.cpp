#include "compress/huffman.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/error.hpp"

namespace mdl::compress {
namespace {

/// Computes code lengths via the standard two-queue / priority-queue
/// Huffman construction over symbol frequencies.
std::vector<std::uint8_t> compute_code_lengths(
    const std::vector<std::uint64_t>& freq) {
  const std::size_t n = freq.size();
  struct Node {
    std::uint64_t weight;
    std::int32_t left, right;   // -1 for leaves
    std::int32_t symbol;        // -1 for internal
  };
  std::vector<Node> nodes;
  using Entry = std::pair<std::uint64_t, std::int32_t>;  // (weight, node id)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  for (std::size_t s = 0; s < n; ++s) {
    if (freq[s] == 0) continue;
    nodes.push_back({freq[s], -1, -1, static_cast<std::int32_t>(s)});
    heap.emplace(freq[s], static_cast<std::int32_t>(nodes.size() - 1));
  }
  std::vector<std::uint8_t> lengths(n, 0);
  if (nodes.empty()) return lengths;
  if (nodes.size() == 1) {
    lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, a, b, -1});
    heap.emplace(wa + wb, static_cast<std::int32_t>(nodes.size() - 1));
  }
  // DFS to assign depths.
  struct Frame {
    std::int32_t node;
    std::uint8_t depth;
  };
  std::vector<Frame> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& nd = nodes[static_cast<std::size_t>(f.node)];
    if (nd.symbol >= 0) {
      lengths[static_cast<std::size_t>(nd.symbol)] = std::max<std::uint8_t>(f.depth, 1);
    } else {
      stack.push_back({nd.left, static_cast<std::uint8_t>(f.depth + 1)});
      stack.push_back({nd.right, static_cast<std::uint8_t>(f.depth + 1)});
    }
  }
  return lengths;
}

/// Canonical codes from lengths: symbols sorted by (length, symbol).
std::vector<std::uint32_t> canonical_codes(
    const std::vector<std::uint8_t>& lengths) {
  std::vector<std::size_t> order;
  for (std::size_t s = 0; s < lengths.size(); ++s)
    if (lengths[s] > 0) order.push_back(s);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return lengths[a] != lengths[b] ? lengths[a] < lengths[b] : a < b;
  });
  std::vector<std::uint32_t> codes(lengths.size(), 0);
  std::uint32_t code = 0;
  std::uint8_t prev_len = 0;
  for (const std::size_t s : order) {
    code <<= (lengths[s] - prev_len);
    codes[s] = code;
    ++code;
    prev_len = lengths[s];
  }
  return codes;
}

}  // namespace

HuffmanEncoded huffman_encode(std::span<const std::uint32_t> symbols,
                              std::uint32_t alphabet_size) {
  MDL_CHECK(alphabet_size > 0, "alphabet must be non-empty");
  std::vector<std::uint64_t> freq(alphabet_size, 0);
  for (const std::uint32_t s : symbols) {
    MDL_CHECK(s < alphabet_size, "symbol " << s << " outside alphabet of "
                                           << alphabet_size);
    ++freq[s];
  }

  HuffmanEncoded enc;
  enc.alphabet_size = alphabet_size;
  enc.symbol_count = symbols.size();
  enc.code_lengths = compute_code_lengths(freq);
  const auto codes = canonical_codes(enc.code_lengths);

  // Pack MSB-first.
  std::uint64_t acc = 0;
  int acc_bits = 0;
  for (const std::uint32_t s : symbols) {
    const std::uint8_t len = enc.code_lengths[s];
    acc = (acc << len) | codes[s];
    acc_bits += len;
    while (acc_bits >= 8) {
      enc.payload.push_back(
          static_cast<std::uint8_t>((acc >> (acc_bits - 8)) & 0xFF));
      acc_bits -= 8;
    }
  }
  if (acc_bits > 0)
    enc.payload.push_back(
        static_cast<std::uint8_t>((acc << (8 - acc_bits)) & 0xFF));
  return enc;
}

std::vector<std::uint32_t> huffman_decode(const HuffmanEncoded& enc) {
  std::vector<std::uint32_t> out;
  out.reserve(enc.symbol_count);
  if (enc.symbol_count == 0) return out;

  const auto codes = canonical_codes(enc.code_lengths);
  // Group symbols by length for first-code/first-index decoding.
  std::uint8_t max_len = 0;
  for (const std::uint8_t l : enc.code_lengths) max_len = std::max(max_len, l);
  MDL_CHECK(max_len > 0, "encoded stream has no code lengths");

  // For each length: sorted list of (code, symbol).
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> by_len(
      static_cast<std::size_t>(max_len) + 1);
  for (std::size_t s = 0; s < enc.code_lengths.size(); ++s)
    if (enc.code_lengths[s] > 0)
      by_len[enc.code_lengths[s]].emplace_back(codes[s],
                                               static_cast<std::uint32_t>(s));
  for (auto& v : by_len) std::sort(v.begin(), v.end());

  std::uint32_t code = 0;
  std::uint8_t len = 0;
  std::size_t bit_pos = 0;
  const std::size_t total_bits = enc.payload.size() * 8;
  while (out.size() < enc.symbol_count) {
    MDL_CHECK(bit_pos < total_bits, "truncated Huffman payload");
    const std::uint8_t byte = enc.payload[bit_pos / 8];
    const int bit = (byte >> (7 - bit_pos % 8)) & 1;
    ++bit_pos;
    code = (code << 1) | static_cast<std::uint32_t>(bit);
    ++len;
    MDL_CHECK(len <= max_len, "invalid Huffman stream (code too long)");
    const auto& bucket = by_len[len];
    if (!bucket.empty() && code >= bucket.front().first &&
        code <= bucket.back().first) {
      const auto it = std::lower_bound(
          bucket.begin(), bucket.end(), std::make_pair(code, std::uint32_t{0}));
      if (it != bucket.end() && it->first == code) {
        out.push_back(it->second);
        code = 0;
        len = 0;
      }
    }
  }
  return out;
}

double stream_entropy_bits(std::span<const std::uint32_t> symbols,
                           std::uint32_t alphabet_size) {
  if (symbols.empty()) return 0.0;
  std::vector<std::uint64_t> freq(alphabet_size, 0);
  for (const std::uint32_t s : symbols) {
    MDL_CHECK(s < alphabet_size, "symbol outside alphabet");
    ++freq[s];
  }
  const double n = static_cast<double>(symbols.size());
  double h = 0.0;
  for (const std::uint64_t f : freq) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / n;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace mdl::compress
