// Fixed-point (int8) inference — the "reducing the bits required to depict
// the parameters" quantization of §III-B (Wu et al. [33], Gupta et al.
// [34]), in the dynamic-range style mobile runtimes deploy: weights are
// stored as int8 with a per-row symmetric scale, activations are quantized
// on the fly per batch row (asymmetric, uint8), and the matmul accumulates
// in int32 before dequantizing. 4x storage saving and integer arithmetic
// on the hot path, at a small accuracy cost measured by the compression
// bench.
//
// The integer product runs through gemm::int8_gemm_nt, which dispatches to
// the AVX2 widening-madd kernel when gemm::Mode is kSimd and to the scalar
// twin otherwise; both produce identical int32 accumulators (integer
// arithmetic is exact), so the quantized path is bit-identical across
// kernel suites, thread counts, and batch sizes.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace mdl::compress {

/// Per-row asymmetric uint8 quantization parameters for activations. The
/// represented range always includes 0 (min is clamped down to 0, max up
/// to 0) so a zero activation quantizes to exactly `zero_point` and
/// dequantizes to exactly 0 — ReLU outputs stay exact.
struct ActQuant {
  float scale = 1.0F;           ///< dequant step; (max-min)/255, or 1 if flat
  std::int32_t zero_point = 0;  ///< uint8 code that represents 0.0f
};

/// Computes the asymmetric quantization parameters for one activation row.
ActQuant choose_act_quant(const float* x, std::int64_t n);

/// Quantizes one activation row: q[c] = clamp(round(x[c]/scale) + zp, 0, 255).
void quantize_act_row(const float* x, std::int64_t n, const ActQuant& aq,
                      std::uint8_t* out);

/// Inference-only dense layer with int8 weights and dynamic activation
/// quantization. Built from a trained float Linear; backward() throws.
/// infer() is const and thread-compatible, so quantized halves can serve
/// from mdl::serve executors.
class Int8Linear : public nn::Module {
 public:
  /// Quantizes `linear`'s weights symmetrically per output row.
  explicit Int8Linear(const nn::Linear& linear);

  Tensor forward(const Tensor& x) override;
  Tensor infer(const Tensor& x) const override;
  [[noreturn]] Tensor backward(const Tensor& grad_out) override;
  std::string name() const override;
  std::int64_t flops_per_example() const override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

  /// Deployable bytes: int8 weights + per-row f32 scales + f32 bias
  /// (+ int32 weight row sums for the zero-point correction).
  std::uint64_t storage_bytes() const;

  /// Reconstructed float weight (tests / inspection).
  Tensor dequantized_weight() const;

  // Kernel-boundary accessors (differential / round-trip tests).
  const std::vector<std::int8_t>& quantized_weights() const {
    return weights_;
  }
  const std::vector<float>& row_scales() const { return row_scales_; }
  const std::vector<std::int32_t>& weight_row_sums() const {
    return row_sums_;
  }

 private:
  std::int64_t in_;
  std::int64_t out_;
  std::vector<std::int8_t> weights_;    ///< [out * in], symmetric per row
  std::vector<float> row_scales_;       ///< [out]
  std::vector<std::int32_t> row_sums_;  ///< [out], sum_c weights_[r,c]
  std::vector<float> bias_;             ///< [out] (empty if none)
};

/// Rebuilds a Sequential of Linear/activations with every Linear replaced
/// by its Int8Linear (inference-only deployment form).
std::unique_ptr<nn::Sequential> int8_quantize_mlp(nn::Sequential& model);

}  // namespace mdl::compress
