// Fixed-point (int8) inference — the "reducing the bits required to depict
// the parameters" quantization of §III-B (Wu et al. [33], Gupta et al.
// [34]), in the dynamic-range style mobile runtimes deploy: weights are
// stored as int8 with a per-row symmetric scale, activations are quantized
// on the fly per batch row, and the matmul accumulates in int32 before
// dequantizing. 4x storage saving and integer arithmetic on the hot path,
// at a small accuracy cost measured by the compression bench.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace mdl::compress {

/// Inference-only dense layer with int8 weights and dynamic activation
/// quantization. Built from a trained float Linear; backward() throws.
class Int8Linear : public nn::Module {
 public:
  /// Quantizes `linear`'s weights symmetrically per output row.
  explicit Int8Linear(const nn::Linear& linear);

  Tensor forward(const Tensor& x) override;
  [[noreturn]] Tensor backward(const Tensor& grad_out) override;
  std::string name() const override;
  std::int64_t flops_per_example() const override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

  /// Deployable bytes: int8 weights + per-row f32 scales + f32 bias.
  std::uint64_t storage_bytes() const;

  /// Reconstructed float weight (tests / inspection).
  Tensor dequantized_weight() const;

 private:
  std::int64_t in_;
  std::int64_t out_;
  std::vector<std::int8_t> weights_;  ///< [out * in]
  std::vector<float> row_scales_;     ///< [out]
  std::vector<float> bias_;           ///< [out] (empty if none)
};

/// Rebuilds a Sequential of Linear/activations with every Linear replaced
/// by its Int8Linear (inference-only deployment form).
std::unique_ptr<nn::Sequential> int8_quantize_mlp(nn::Sequential& model);

}  // namespace mdl::compress
