// BlockCodec — canonical-Huffman + RLE entropy codec over raw byte streams
// (the hzr family of codecs: Huffman with zero-run symbols, built for
// "stochastic data with many values close to zero").
//
// This is the general-purpose sibling of huffman.hpp's index-stream coder:
// it frames arbitrary byte payloads into independent blocks, escapes
// incompressible blocks verbatim, and carries a CRC-32 of the raw bytes so
// a decode either reproduces the input exactly or throws. It sits below
// mdl::ckpt and mdl::federated in the dependency graph (library mdl_codec,
// core-only), so checkpoint archives and federated wire payloads can both
// ride on it.
//
// Stream layout (all integers little-endian):
//
//   [u32 magic "MDLZ"] [u8 version = 1] [u64 raw_size] [u32 crc32(raw)]
//   then blocks until raw_size bytes are accounted for:
//     [u8 type] [u32 raw_len] [u32 enc_len] [enc_len bytes]
//       type 0 (stored):  enc_len == raw_len, the bytes verbatim
//       type 1 (huffman): entropy-coded block payload (see codec.cpp)
//
// The decoder treats its input as adversarial: every length, table entry,
// code, and run is validated before use, and any malformed input — flipped
// bit, truncation, trailing garbage, over-subscribed code table, run
// overflowing the block — throws mdl::Error. It never reads out of bounds
// (tests/test_codec.cpp sweeps every bit flip and truncation under
// ASan+UBSan).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mdl::compress {

struct BlockCodecConfig {
  /// Raw bytes per block. Bigger blocks amortize the per-block table;
  /// smaller ones bound the damage of an incompressible region. Must be in
  /// [1, kMaxBlockRaw].
  std::size_t block_size = 64 * 1024;
};

class BlockCodec {
 public:
  static constexpr std::uint32_t kMagic = 0x5A4C444DU;  // "MDLZ"
  static constexpr std::uint8_t kVersion = 1;
  /// Stream header: magic + version + raw_size + raw CRC.
  static constexpr std::size_t kStreamHeaderBytes = 4 + 1 + 8 + 4;
  /// Per-block header: type + raw_len + enc_len.
  static constexpr std::size_t kBlockHeaderBytes = 1 + 4 + 4;
  /// Hard upper bound on a block's raw length the decoder will accept.
  static constexpr std::size_t kMaxBlockRaw = 1 << 20;

  explicit BlockCodec(BlockCodecConfig config = {});

  /// Encodes `raw` into a framed stream. Never expands beyond
  /// max_encoded_size() thanks to the stored-block escape.
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> raw) const;
  /// String-payload convenience (checkpoint archives travel as strings).
  std::string encode_string(std::string_view raw) const;

  /// Decodes a framed stream; the format is self-describing, so no config
  /// is needed. Throws mdl::Error on any malformed input.
  static std::vector<std::uint8_t> decode(std::span<const std::uint8_t> enc);
  static std::string decode_string(std::string_view enc);

  /// True when `bytes` starts with a plausible BlockCodec stream header
  /// (magic + version). A probe, not a validation.
  static bool looks_encoded(std::string_view bytes);

  /// Worst-case encoded size for `raw_size` input bytes at `block_size`:
  /// stream header + one block header per block + the raw bytes (stored
  /// escape). The property tests pin encode() under this bound.
  static std::uint64_t max_encoded_size(std::uint64_t raw_size,
                                        std::size_t block_size);
  std::uint64_t max_encoded_size(std::uint64_t raw_size) const {
    return max_encoded_size(raw_size, config_.block_size);
  }

  const BlockCodecConfig& config() const { return config_; }

 private:
  BlockCodecConfig config_;
};

}  // namespace mdl::compress
