// Canonical Huffman coding — stage 3 of Deep Compression: entropy-codes the
// quantization indices (whose distribution is highly skewed after pruning,
// since the zero index dominates).
//
// Canonical codes let the table be stored as just the per-symbol code
// lengths, which is what the artifact serializer writes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mdl::compress {

/// A Huffman-encoded symbol stream.
struct HuffmanEncoded {
  std::uint32_t alphabet_size = 0;
  std::vector<std::uint8_t> code_lengths;  ///< per symbol; 0 = unused
  std::vector<std::uint8_t> payload;       ///< packed bitstream
  std::uint64_t symbol_count = 0;

  /// Exact framing overhead `write_compressed` spends per stream:
  /// u32 alphabet_size + u64 symbol_count + u64 code-length count +
  /// u64 payload size. Pinned by CompressTest.StorageBytesMatchesSerializer.
  static constexpr std::uint64_t kSerializedFramingBytes = 4 + 8 + 8 + 8;

  /// Deployable bytes: payload + one byte per alphabet symbol for lengths
  /// + the serializer's actual framing.
  std::uint64_t storage_bytes() const {
    return payload.size() + code_lengths.size() + kSerializedFramingBytes;
  }
};

/// Builds a canonical Huffman code for `symbols` (values < alphabet_size)
/// and encodes them. Handles the degenerate one-distinct-symbol case.
HuffmanEncoded huffman_encode(std::span<const std::uint32_t> symbols,
                              std::uint32_t alphabet_size);

/// Inverse of huffman_encode.
std::vector<std::uint32_t> huffman_decode(const HuffmanEncoded& enc);

/// Shannon entropy (bits/symbol) of the stream — lower bound for the
/// achieved code length, reported by the compression bench.
double stream_entropy_bits(std::span<const std::uint32_t> symbols,
                           std::uint32_t alphabet_size);

}  // namespace mdl::compress
