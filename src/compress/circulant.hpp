// Block-circulant fully connected layer (CirCNN — Ding et al. [14]; the
// "structural matrix" compression of §III-B, cf. circulant projections
// [35]).
//
// The [out, in] weight is partitioned into b x b blocks, each constrained
// to be circulant and therefore defined by b numbers instead of b^2 — a
// b-fold parameter reduction — while every block matvec becomes a circular
// convolution computed in O(b log b) via FFT instead of O(b^2). Both the
// storage and the compute saving the paper describes are real here, and
// the layer trains with exact gradients (also computed with FFTs).
#pragma once

#include "core/fft.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace mdl::compress {

/// Fully connected layer with block-circulant weights.
///
/// Block (r, q) of the implied dense weight W satisfies
///   W[r*b + i][q*b + j] = c_{r,q}[(i - j) mod b],
/// so y_r = sum_q circ(c_{r,q}) x_q + bias.
class CirculantLinear : public nn::Module {
 public:
  /// in/out features must be multiples of `block_size`, which must be a
  /// power of two (radix-2 FFT).
  CirculantLinear(std::int64_t in_features, std::int64_t out_features,
                  std::int64_t block_size, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<nn::Parameter*> parameters() override;
  std::string name() const override;
  std::int64_t flops_per_example() const override;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }
  std::int64_t block_size() const { return block_; }

  /// Materializes the implied dense weight (tests / inspection).
  Tensor to_dense_weight() const;

  /// Parameter count ratio vs a dense layer (= block_size, minus bias).
  double compression_ratio() const;

  nn::Parameter& kernels() { return kernels_; }
  nn::Parameter& bias() { return bias_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  std::int64_t block_;
  std::int64_t rows_;  ///< out / block
  std::int64_t cols_;  ///< in / block
  nn::Parameter kernels_;  ///< [rows * cols, block]
  nn::Parameter bias_;     ///< [out]
  Tensor cached_input_;
};

/// Projects a trained dense Linear weight onto the nearest (Frobenius)
/// block-circulant structure: c_{r,q}[k] = mean over the k-th circulant
/// diagonal of block (r, q). Returns the kernel tensor [rows*cols, block].
Tensor project_to_circulant(const Tensor& dense_weight,
                            std::int64_t block_size);

/// Builds a CirculantLinear initialized from a trained dense Linear
/// (weights projected, bias copied).
std::unique_ptr<CirculantLinear> circulant_from_linear(
    const nn::Linear& linear, std::int64_t block_size, Rng& rng);

}  // namespace mdl::compress
