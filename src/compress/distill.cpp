#include "compress/distill.hpp"

#include "core/random.hpp"
#include "federated/common.hpp"

namespace mdl::compress {

double distill(nn::Sequential& teacher, nn::Sequential& student,
               const data::TabularDataset& train,
               const data::TabularDataset& test, const DistillConfig& config) {
  MDL_CHECK(train.size() > 0, "empty training set");
  MDL_CHECK(config.epochs > 0 && config.batch_size > 0 && config.lr > 0.0,
            "invalid distillation config");

  // Teacher logits are fixed; compute once.
  teacher.set_training(false);
  const Tensor teacher_logits = teacher.forward(train.features);

  Rng rng(config.seed);
  nn::DistillationLoss loss(config.temperature, config.alpha);
  student.set_training(true);
  const std::int64_t d = train.dim();
  const std::int64_t c = teacher_logits.shape(1);

  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto batches =
        data::minibatch_indices(static_cast<std::size_t>(train.size()),
                                static_cast<std::size_t>(config.batch_size),
                                rng);
    for (const auto& batch : batches) {
      Tensor xb({static_cast<std::int64_t>(batch.size()), d});
      Tensor tb({static_cast<std::int64_t>(batch.size()), c});
      std::vector<std::int64_t> yb(batch.size());
      for (std::size_t r = 0; r < batch.size(); ++r) {
        xb.set_row(static_cast<std::int64_t>(r),
                   train.features.row(static_cast<std::int64_t>(batch[r])));
        tb.set_row(static_cast<std::int64_t>(r),
                   teacher_logits.row(static_cast<std::int64_t>(batch[r])));
        yb[r] = train.labels[batch[r]];
      }
      const Tensor logits = student.forward(xb);
      loss.forward(logits, tb, yb);
      student.zero_grad();
      student.backward(loss.backward());
      for (nn::Parameter* p : student.parameters())
        p->value.add_scaled_(p->grad, static_cast<float>(-config.lr));
    }
  }
  return federated::evaluate_accuracy(student, test);
}

}  // namespace mdl::compress
