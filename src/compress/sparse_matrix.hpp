// Compressed Sparse Row matrices for pruned layers.
//
// After magnitude pruning (Han et al.), weight matrices become sparse; CSR
// is the storage/compute format a mobile runtime would actually deploy.
// Provides dense<->CSR conversion, sparse matrix-vector and matrix-matrix
// products, and exact storage accounting for the compression benches.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.hpp"

namespace mdl::compress {

/// Row-major CSR float matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds CSR from a dense 2-D tensor, dropping entries with
  /// |value| <= threshold.
  static CsrMatrix from_dense(const Tensor& dense, float threshold = 0.0F);

  Tensor to_dense() const;

  /// y = A x with x of length cols().
  Tensor matvec(const Tensor& x) const;

  /// C = A @ B^T-free dense product: B is [cols, n] -> [rows, n].
  Tensor matmul(const Tensor& b) const;

  /// True when converting `dense` to CSR and multiplying would beat the
  /// dense kernel, i.e. the zero fraction clears `min_sparsity`.
  static bool worth_sparsifying(const Tensor& dense,
                                double min_sparsity = 0.5);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(values_.size()); }
  double density() const;

  /// Bytes for values (f32) + column indices (u32) + row pointers (u32) —
  /// what a deployed sparse layer occupies.
  std::uint64_t storage_bytes() const;

  const std::vector<float>& values() const { return values_; }
  const std::vector<std::uint32_t>& col_indices() const { return cols_idx_; }
  const std::vector<std::uint32_t>& row_ptr() const { return row_ptr_; }

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<float> values_;
  std::vector<std::uint32_t> cols_idx_;
  std::vector<std::uint32_t> row_ptr_;
};

/// C = A @ B for a dense-stored but magnitude-pruned A ([m,k] x [k,n]),
/// skipping A's exact zeros. This is the zero-skip branch that used to sit
/// inside the dense mdl::matmul kernels; it lives here now so dense GEMM is
/// branch-free and the pruning path opts into sparsity explicitly. For an
/// unpruned A this matches mdl::matmul bit for bit (skipping a zero term
/// only differs on -0.0 / non-finite inputs, which pruned weights never
/// contain).
Tensor pruned_matmul(const Tensor& a, const Tensor& b);

/// y = A @ x with the same zero-skip contract as pruned_matmul.
Tensor pruned_matvec(const Tensor& a, const Tensor& x);

}  // namespace mdl::compress
