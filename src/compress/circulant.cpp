#include "compress/circulant.hpp"

#include <cmath>
#include <sstream>

#include "nn/init.hpp"
#include "nn/linear.hpp"

namespace mdl::compress {

CirculantLinear::CirculantLinear(std::int64_t in_features,
                                 std::int64_t out_features,
                                 std::int64_t block_size, Rng& rng)
    : in_(in_features),
      out_(out_features),
      block_(block_size),
      rows_(out_features / block_size),
      cols_(in_features / block_size),
      kernels_("circ_kernels", Tensor({(out_features / block_size) *
                                           (in_features / block_size),
                                       block_size})),
      bias_("bias", Tensor({out_features})) {
  MDL_CHECK(block_size > 0 && is_power_of_two(static_cast<std::size_t>(block_size)),
            "block size must be a power of two, got " << block_size);
  MDL_CHECK(in_features > 0 && in_features % block_size == 0,
            "in features " << in_features << " not a multiple of block "
                           << block_size);
  MDL_CHECK(out_features > 0 && out_features % block_size == 0,
            "out features " << out_features << " not a multiple of block "
                            << block_size);
  // Match the variance a dense Xavier layer would have: each output sums
  // `in` kernel entries, so initialize like a dense [out, in] weight.
  nn::xavier_uniform(kernels_.value, in_, out_, rng);
}

Tensor CirculantLinear::forward(const Tensor& x) {
  MDL_CHECK(x.ndim() == 2 && x.shape(1) == in_,
            "CirculantLinear(" << in_ << "->" << out_ << ") got "
                               << x.shape_str());
  cached_input_ = x;
  const std::int64_t batch = x.shape(0);
  const auto b = static_cast<std::size_t>(block_);
  Tensor y({batch, out_});
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* xin = x.data() + n * in_;
    float* yout = y.data() + n * out_;
    for (std::int64_t r = 0; r < rows_; ++r) {
      for (std::int64_t q = 0; q < cols_; ++q) {
        const float* c = kernels_.value.data() + (r * cols_ + q) * block_;
        const auto conv = circular_convolve({c, b}, {xin + q * block_, b});
        for (std::int64_t i = 0; i < block_; ++i)
          yout[r * block_ + i] += conv[static_cast<std::size_t>(i)];
      }
      for (std::int64_t i = 0; i < block_; ++i)
        yout[r * block_ + i] += bias_.value[r * block_ + i];
    }
  }
  return y;
}

Tensor CirculantLinear::backward(const Tensor& grad_out) {
  MDL_CHECK(grad_out.ndim() == 2 && grad_out.shape(1) == out_ &&
                grad_out.shape(0) == cached_input_.shape(0),
            "CirculantLinear backward grad " << grad_out.shape_str());
  const std::int64_t batch = grad_out.shape(0);
  const auto b = static_cast<std::size_t>(block_);
  Tensor grad_in({batch, in_});

  for (std::int64_t n = 0; n < batch; ++n) {
    const float* xin = cached_input_.data() + n * in_;
    const float* gout = grad_out.data() + n * out_;
    float* gin = grad_in.data() + n * in_;
    for (std::int64_t r = 0; r < rows_; ++r) {
      const std::span<const float> dy{gout + r * block_, b};
      for (std::int64_t i = 0; i < block_; ++i)
        bias_.grad[r * block_ + i] += dy[static_cast<std::size_t>(i)];
      for (std::int64_t q = 0; q < cols_; ++q) {
        const float* c = kernels_.value.data() + (r * cols_ + q) * block_;
        float* dc = kernels_.grad.data() + (r * cols_ + q) * block_;
        const std::span<const float> xq{xin + q * block_, b};
        // y_i = sum_j c[(i-j) mod b] x_j:
        //   dc[k] = sum_i dy[i] x[(i-k) mod b]  (correlate(dy, x))
        //   dx[j] = sum_i dy[i] c[(i-j) mod b]  (correlate(dy, c))
        const auto dck = circular_correlate(dy, xq);
        const auto dxj = circular_correlate(dy, {c, b});
        for (std::int64_t k = 0; k < block_; ++k) {
          dc[k] += dck[static_cast<std::size_t>(k)];
          gin[q * block_ + k] += dxj[static_cast<std::size_t>(k)];
        }
      }
    }
  }
  return grad_in;
}

std::vector<nn::Parameter*> CirculantLinear::parameters() {
  return {&kernels_, &bias_};
}

std::string CirculantLinear::name() const {
  std::ostringstream os;
  os << "CirculantLinear(" << in_ << "->" << out_ << ", b=" << block_ << ')';
  return os.str();
}

std::int64_t CirculantLinear::flops_per_example() const {
  // Per block: three FFTs of length b (~5 b log2 b each) plus b multiplies.
  const auto lb = static_cast<std::int64_t>(
      std::llround(std::log2(static_cast<double>(block_))));
  return rows_ * cols_ * (3 * 5 * block_ * lb + 6 * block_) + out_;
}

Tensor CirculantLinear::to_dense_weight() const {
  Tensor w({out_, in_});
  for (std::int64_t r = 0; r < rows_; ++r)
    for (std::int64_t q = 0; q < cols_; ++q) {
      const float* c = kernels_.value.data() + (r * cols_ + q) * block_;
      for (std::int64_t i = 0; i < block_; ++i)
        for (std::int64_t j = 0; j < block_; ++j)
          w[(r * block_ + i) * in_ + q * block_ + j] =
              c[((i - j) % block_ + block_) % block_];
    }
  return w;
}

double CirculantLinear::compression_ratio() const {
  return static_cast<double>(in_ * out_) /
         static_cast<double>(kernels_.value.size());
}

Tensor project_to_circulant(const Tensor& dense_weight,
                            std::int64_t block_size) {
  MDL_CHECK(dense_weight.ndim() == 2, "need a 2-D weight");
  const std::int64_t out = dense_weight.shape(0);
  const std::int64_t in = dense_weight.shape(1);
  MDL_CHECK(out % block_size == 0 && in % block_size == 0,
            "weight " << dense_weight.shape_str()
                      << " not divisible into blocks of " << block_size);
  const std::int64_t rows = out / block_size;
  const std::int64_t cols = in / block_size;
  Tensor kernels({rows * cols, block_size});
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t q = 0; q < cols; ++q) {
      float* c = kernels.data() + (r * cols + q) * block_size;
      for (std::int64_t i = 0; i < block_size; ++i)
        for (std::int64_t j = 0; j < block_size; ++j) {
          const std::int64_t k = ((i - j) % block_size + block_size) % block_size;
          c[k] += dense_weight[(r * block_size + i) * in + q * block_size + j];
        }
      for (std::int64_t k = 0; k < block_size; ++k)
        c[k] /= static_cast<float>(block_size);
    }
  return kernels;
}

std::unique_ptr<CirculantLinear> circulant_from_linear(
    const nn::Linear& linear, std::int64_t block_size, Rng& rng) {
  auto layer = std::make_unique<CirculantLinear>(
      linear.in_features(), linear.out_features(), block_size, rng);
  layer->kernels().value =
      project_to_circulant(linear.weight().value, block_size);
  if (linear.has_bias())
    layer->bias().value = const_cast<nn::Linear&>(linear).bias().value;
  return layer;
}

}  // namespace mdl::compress
