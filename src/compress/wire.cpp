#include "compress/wire.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/error.hpp"

namespace mdl::compress {
namespace {

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void append_f32(std::vector<std::uint8_t>& out, float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, 4);
  append_u32(out, bits);
}

void append_varint(std::vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Maps int8 to a byte so that small magnitudes (the common case after
/// clipping/top-k) become small values: 0 -> 0x00 (RLE fodder), -1 -> 1,
/// 1 -> 2, ...
std::uint8_t zigzag8(std::int32_t q) {
  return static_cast<std::uint8_t>((q << 1) ^ (q >> 31));
}

std::int32_t unzigzag8(std::uint8_t z) {
  return static_cast<std::int32_t>(z >> 1) ^ -static_cast<std::int32_t>(z & 1);
}

std::int32_t quantize(float v, float scale) {
  if (scale == 0.0f) return 0;
  return std::clamp(static_cast<std::int32_t>(std::lround(v / scale)), -127,
                    127);
}

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  std::uint32_t u32() {
    MDL_CHECK(data_.size() - pos_ >= 4, "wire payload truncated");
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }
  float f32() {
    const std::uint32_t bits = u32();
    float v = 0.0f;
    std::memcpy(&v, &bits, 4);
    return v;
  }
  std::uint8_t u8() {
    MDL_CHECK(pos_ < data_.size(), "wire payload truncated");
    return data_[pos_++];
  }
  std::uint32_t varint() {
    std::uint32_t v = 0;
    for (int shift = 0; shift < 35; shift += 7) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint32_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
    }
    MDL_FAIL("overlong varint in wire payload");
  }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

float max_abs(std::span<const float> values) {
  float m = 0.0f;
  for (const float v : values) m = std::max(m, std::fabs(v));
  return m;
}

}  // namespace

std::vector<std::uint8_t> QuantizedWireCodec::encode_dense(
    std::span<const float> values) const {
  const float scale = max_abs(values) / 127.0f;
  std::vector<std::uint8_t> packed;
  packed.reserve(8 + values.size());
  append_u32(packed, static_cast<std::uint32_t>(values.size()));
  append_f32(packed, scale);
  for (const float v : values)
    packed.push_back(zigzag8(quantize(v, scale)));
  return codec_.encode(packed);
}

std::vector<std::uint8_t> QuantizedWireCodec::encode_sparse(
    std::span<const std::pair<std::uint32_t, float>> coords) const {
  float m = 0.0f;
  for (const auto& [idx, v] : coords) m = std::max(m, std::fabs(v));
  const float scale = m / 127.0f;
  std::vector<std::uint8_t> packed;
  packed.reserve(8 + coords.size() * 3);
  append_u32(packed, static_cast<std::uint32_t>(coords.size()));
  append_f32(packed, scale);
  std::uint32_t prev = 0;
  bool first = true;
  for (const auto& [idx, v] : coords) {
    MDL_CHECK(first || idx > prev,
              "sparse wire payload indices must be strictly ascending");
    append_varint(packed, first ? idx : idx - prev);
    prev = idx;
    first = false;
    (void)v;
  }
  for (const auto& [idx, v] : coords) {
    (void)idx;
    packed.push_back(zigzag8(quantize(v, scale)));
  }
  return codec_.encode(packed);
}

std::uint64_t QuantizedWireCodec::dense_wire_bytes(
    std::span<const float> values) const {
  return encode_dense(values).size();
}

std::uint64_t QuantizedWireCodec::sparse_wire_bytes(
    std::span<const std::pair<std::uint32_t, float>> coords) const {
  return encode_sparse(coords).size();
}

std::vector<float> QuantizedWireCodec::decode_dense(
    std::span<const std::uint8_t> enc) {
  const std::vector<std::uint8_t> packed = BlockCodec::decode(enc);
  ByteReader r(packed);
  const std::uint32_t count = r.u32();
  const float scale = r.f32();
  MDL_CHECK(std::isfinite(scale) && scale >= 0.0f,
            "dense wire payload has an invalid scale");
  std::vector<float> values;
  values.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i)
    values.push_back(static_cast<float>(unzigzag8(r.u8())) * scale);
  MDL_CHECK(r.done(), "trailing bytes in dense wire payload");
  return values;
}

std::vector<std::pair<std::uint32_t, float>> QuantizedWireCodec::decode_sparse(
    std::span<const std::uint8_t> enc) {
  const std::vector<std::uint8_t> packed = BlockCodec::decode(enc);
  ByteReader r(packed);
  const std::uint32_t k = r.u32();
  const float scale = r.f32();
  MDL_CHECK(std::isfinite(scale) && scale >= 0.0f,
            "sparse wire payload has an invalid scale");
  std::vector<std::pair<std::uint32_t, float>> coords(k);
  std::uint32_t idx = 0;
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::uint32_t delta = r.varint();
    MDL_CHECK(i == 0 || delta > 0, "sparse wire payload index delta of zero");
    idx = i == 0 ? delta : idx + delta;
    coords[i].first = idx;
  }
  for (std::uint32_t i = 0; i < k; ++i)
    coords[i].second = static_cast<float>(unzigzag8(r.u8())) * scale;
  MDL_CHECK(r.done(), "trailing bytes in sparse wire payload");
  return coords;
}

}  // namespace mdl::compress
