#include "compress/prune.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "compress/sparse_matrix.hpp"
#include "nn/activations.hpp"
#include "nn/dropout.hpp"

namespace mdl::compress {

float prune_by_magnitude(Tensor& t, double sparsity) {
  MDL_CHECK(sparsity >= 0.0 && sparsity < 1.0,
            "sparsity must be in [0, 1), got " << sparsity);
  if (sparsity == 0.0 || t.empty()) return 0.0F;
  const auto n = static_cast<std::size_t>(t.size());
  const auto drop = static_cast<std::size_t>(
      std::llround(sparsity * static_cast<double>(n)));
  if (drop == 0) return 0.0F;

  std::vector<float> mags(n);
  for (std::size_t i = 0; i < n; ++i)
    mags[i] = std::abs(t[static_cast<std::int64_t>(i)]);
  std::nth_element(mags.begin(),
                   mags.begin() + static_cast<std::ptrdiff_t>(drop - 1),
                   mags.end());
  const float threshold = mags[drop - 1];

  // Zero everything strictly below, then zero ties until the exact count.
  std::size_t zeroed = 0;
  for (std::int64_t i = 0; i < t.size(); ++i) {
    if (std::abs(t[i]) < threshold && t[i] != 0.0F) {
      t[i] = 0.0F;
      ++zeroed;
    }
  }
  for (std::int64_t i = 0; i < t.size() && zeroed < drop; ++i) {
    if (t[i] != 0.0F && std::abs(t[i]) == threshold) {
      t[i] = 0.0F;
      ++zeroed;
    }
  }
  return threshold;
}

double prune_model(nn::Module& model, double sparsity) {
  std::int64_t total = 0, zeros = 0;
  for (nn::Parameter* p : model.parameters()) {
    if (p->value.ndim() != 2) continue;  // weights only
    prune_by_magnitude(p->value, sparsity);
    total += p->value.size();
    for (std::int64_t i = 0; i < p->value.size(); ++i)
      if (p->value[i] == 0.0F) ++zeros;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(zeros) / static_cast<double>(total);
}

double measure_sparsity(const Tensor& t) {
  if (t.empty()) return 0.0;
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < t.size(); ++i)
    if (t[i] == 0.0F) ++zeros;
  return static_cast<double>(zeros) / static_cast<double>(t.size());
}

double measure_model_sparsity(nn::Module& model) {
  std::int64_t total = 0, zeros = 0;
  for (nn::Parameter* p : model.parameters()) {
    if (p->value.ndim() != 2) continue;
    total += p->value.size();
    for (std::int64_t i = 0; i < p->value.size(); ++i)
      if (p->value[i] == 0.0F) ++zeros;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(zeros) / static_cast<double>(total);
}

void mask_pruned_gradients(nn::Module& model) {
  for (nn::Parameter* p : model.parameters()) {
    if (p->value.ndim() != 2) continue;
    for (std::int64_t i = 0; i < p->value.size(); ++i)
      if (p->value[i] == 0.0F) p->grad[i] = 0.0F;
  }
}

PrunedLinear::PrunedLinear(const nn::Linear& linear)
    : in_(linear.in_features()),
      out_(linear.out_features()),
      weight_(linear.weight().value),
      bias_(linear.has_bias() ? const_cast<nn::Linear&>(linear).bias().value
                              : Tensor({0})) {}

Tensor PrunedLinear::forward(const Tensor& x) { return infer(x); }

Tensor PrunedLinear::infer(const Tensor& x) const {
  MDL_CHECK(x.ndim() == 2 && x.shape(1) == in_,
            "PrunedLinear(" << in_ << "->" << out_ << ") got input "
                            << x.shape_str());
  // y^T = W @ x^T through the explicit zero-skip kernel; the transposes
  // are exact copies, so this matches the dense Linear bit for bit.
  Tensor yt = pruned_matmul(weight_, x.transposed());  // [out, B]
  Tensor y = yt.transposed();                          // [B, out]
  if (bias_.size() > 0) add_row_broadcast(y, bias_);
  return y;
}

Tensor PrunedLinear::backward(const Tensor&) {
  MDL_FAIL("PrunedLinear is inference-only");
}

std::string PrunedLinear::name() const {
  std::ostringstream os;
  os << "PrunedLinear(" << in_ << "->" << out_ << ", "
     << static_cast<int>(sparsity() * 100.0) << "% sparse)";
  return os.str();
}

std::int64_t PrunedLinear::flops_per_example() const {
  // Effective flops: only surviving weights do work.
  const auto nnz = static_cast<std::int64_t>(
      static_cast<double>(in_ * out_) * (1.0 - sparsity()));
  return 2 * nnz + bias_.size();
}

double PrunedLinear::sparsity() const { return measure_sparsity(weight_); }

std::uint64_t PrunedLinear::storage_bytes() const {
  return CsrMatrix::from_dense(weight_).storage_bytes() +
         static_cast<std::uint64_t>(bias_.size()) * 4;
}

std::unique_ptr<nn::Sequential> sparse_deploy_mlp(nn::Sequential& model) {
  auto out = std::make_unique<nn::Sequential>();
  for (std::size_t i = 0; i < model.size(); ++i) {
    nn::Module& layer = model.layer(i);
    if (auto* lin = dynamic_cast<nn::Linear*>(&layer)) {
      out->append(std::make_unique<PrunedLinear>(*lin));
    } else if (dynamic_cast<nn::ReLU*>(&layer) != nullptr) {
      out->emplace<nn::ReLU>();
    } else if (dynamic_cast<nn::Sigmoid*>(&layer) != nullptr) {
      out->emplace<nn::Sigmoid>();
    } else if (dynamic_cast<nn::Tanh*>(&layer) != nullptr) {
      out->emplace<nn::Tanh>();
    } else if (dynamic_cast<nn::Dropout*>(&layer) != nullptr) {
      // Dropout is identity at inference; drop it from the deployed graph.
    } else {
      MDL_FAIL("sparse_deploy_mlp cannot rebuild layer " << layer.name());
    }
  }
  out->set_training(false);
  return out;
}

}  // namespace mdl::compress
