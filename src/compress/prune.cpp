#include "compress/prune.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mdl::compress {

float prune_by_magnitude(Tensor& t, double sparsity) {
  MDL_CHECK(sparsity >= 0.0 && sparsity < 1.0,
            "sparsity must be in [0, 1), got " << sparsity);
  if (sparsity == 0.0 || t.empty()) return 0.0F;
  const auto n = static_cast<std::size_t>(t.size());
  const auto drop = static_cast<std::size_t>(
      std::llround(sparsity * static_cast<double>(n)));
  if (drop == 0) return 0.0F;

  std::vector<float> mags(n);
  for (std::size_t i = 0; i < n; ++i)
    mags[i] = std::abs(t[static_cast<std::int64_t>(i)]);
  std::nth_element(mags.begin(),
                   mags.begin() + static_cast<std::ptrdiff_t>(drop - 1),
                   mags.end());
  const float threshold = mags[drop - 1];

  // Zero everything strictly below, then zero ties until the exact count.
  std::size_t zeroed = 0;
  for (std::int64_t i = 0; i < t.size(); ++i) {
    if (std::abs(t[i]) < threshold && t[i] != 0.0F) {
      t[i] = 0.0F;
      ++zeroed;
    }
  }
  for (std::int64_t i = 0; i < t.size() && zeroed < drop; ++i) {
    if (t[i] != 0.0F && std::abs(t[i]) == threshold) {
      t[i] = 0.0F;
      ++zeroed;
    }
  }
  return threshold;
}

double prune_model(nn::Module& model, double sparsity) {
  std::int64_t total = 0, zeros = 0;
  for (nn::Parameter* p : model.parameters()) {
    if (p->value.ndim() != 2) continue;  // weights only
    prune_by_magnitude(p->value, sparsity);
    total += p->value.size();
    for (std::int64_t i = 0; i < p->value.size(); ++i)
      if (p->value[i] == 0.0F) ++zeros;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(zeros) / static_cast<double>(total);
}

double measure_sparsity(const Tensor& t) {
  if (t.empty()) return 0.0;
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < t.size(); ++i)
    if (t[i] == 0.0F) ++zeros;
  return static_cast<double>(zeros) / static_cast<double>(t.size());
}

double measure_model_sparsity(nn::Module& model) {
  std::int64_t total = 0, zeros = 0;
  for (nn::Parameter* p : model.parameters()) {
    if (p->value.ndim() != 2) continue;
    total += p->value.size();
    for (std::int64_t i = 0; i < p->value.size(); ++i)
      if (p->value[i] == 0.0F) ++zeros;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(zeros) / static_cast<double>(total);
}

void mask_pruned_gradients(nn::Module& model) {
  for (nn::Parameter* p : model.parameters()) {
    if (p->value.ndim() != 2) continue;
    for (std::int64_t i = 0; i < p->value.size(); ++i)
      if (p->value[i] == 0.0F) p->grad[i] = 0.0F;
  }
}

}  // namespace mdl::compress
