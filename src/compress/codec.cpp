#include "compress/codec.hpp"

#include <algorithm>
#include <array>
#include <queue>

#include "core/error.hpp"

namespace mdl::compress {
namespace {

// ---- CRC-32 (IEEE 802.3, same polynomial as mdl::ckpt's) -------------------
// mdl_codec sits below mdl_ckpt in the link graph, so it carries its own
// tiny table instead of borrowing ckpt/crc32.hpp.

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t crc32_bytes(std::span<const std::uint8_t> data) {
  const auto& t = crc_table();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const std::uint8_t b : data) crc = t[(crc ^ b) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFU;
}

// ---- Alphabet --------------------------------------------------------------
// Literals 0..255 plus five zero-run symbols (the RLE half of the codec).
// A lone zero is literal 0; runs of >= 2 use the shortest-covering run
// symbol, longest runs split greedily.

constexpr std::uint32_t kNumLiterals = 256;
constexpr std::uint32_t kSymZ2 = 256;    // exactly 2 zeros
constexpr std::uint32_t kSymZ3 = 257;    // 3 + 2 extra bits  -> 3..6
constexpr std::uint32_t kSymZ7 = 258;    // 7 + 4 extra bits  -> 7..22
constexpr std::uint32_t kSymZ23 = 259;   // 23 + 8 extra bits -> 23..278
constexpr std::uint32_t kSymZ279 = 260;  // 279 + 14 extra    -> 279..16662
constexpr std::uint32_t kAlphabet = 261;
constexpr std::uint32_t kMaxRun = 279 + (1U << 14) - 1;  // 16662
constexpr std::uint8_t kMaxCodeLen = 15;

struct RunSym {
  std::uint32_t sym;
  std::uint32_t base;
  std::uint32_t extra_bits;
};
constexpr std::array<RunSym, 5> kRunSyms{{{kSymZ2, 2, 0},
                                          {kSymZ3, 3, 2},
                                          {kSymZ7, 7, 4},
                                          {kSymZ23, 23, 8},
                                          {kSymZ279, 279, 14}}};

struct Token {
  std::uint32_t sym;
  std::uint16_t extra_bits;
  std::uint16_t extra_val;
};

void emit_run_tokens(std::size_t run, std::vector<Token>& out,
                     std::array<std::uint64_t, kAlphabet>& freq) {
  while (run > 0) {
    if (run == 1) {
      out.push_back({0, 0, 0});
      ++freq[0];
      return;
    }
    std::size_t take = std::min<std::size_t>(run, kMaxRun);
    // Avoid leaving a remainder of 1 that costs a full literal when we can
    // shorten this token by one instead.
    if (run - take == 1 && take > 2) --take;
    const RunSym* rs = &kRunSyms[0];
    for (const RunSym& cand : kRunSyms)
      if (take >= cand.base) rs = &cand;
    const auto extra =
        static_cast<std::uint16_t>(take - rs->base);
    out.push_back({rs->sym, static_cast<std::uint16_t>(rs->extra_bits), extra});
    ++freq[rs->sym];
    run -= take;
  }
}

// ---- Length-limited Huffman code construction ------------------------------

/// Standard priority-queue Huffman depths, then clamp to kMaxCodeLen and
/// restore the Kraft inequality by deepening the deepest non-max leaves.
std::array<std::uint8_t, kAlphabet> limited_code_lengths(
    const std::array<std::uint64_t, kAlphabet>& freq) {
  struct Node {
    std::uint64_t weight;
    std::int32_t left, right, symbol;
  };
  std::vector<Node> nodes;
  using Entry = std::pair<std::uint64_t, std::int32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::uint32_t s = 0; s < kAlphabet; ++s) {
    if (freq[s] == 0) continue;
    nodes.push_back({freq[s], -1, -1, static_cast<std::int32_t>(s)});
    heap.emplace(freq[s], static_cast<std::int32_t>(nodes.size() - 1));
  }
  std::array<std::uint8_t, kAlphabet> lengths{};
  if (nodes.empty()) return lengths;
  if (nodes.size() == 1) {
    lengths[static_cast<std::size_t>(nodes[0].symbol)] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, a, b, -1});
    heap.emplace(wa + wb, static_cast<std::int32_t>(nodes.size() - 1));
  }
  struct Frame {
    std::int32_t node;
    std::uint8_t depth;
  };
  std::vector<Frame> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& nd = nodes[static_cast<std::size_t>(f.node)];
    if (nd.symbol >= 0) {
      lengths[static_cast<std::size_t>(nd.symbol)] =
          std::max<std::uint8_t>(f.depth, 1);
    } else {
      stack.push_back({nd.left, static_cast<std::uint8_t>(f.depth + 1)});
      stack.push_back({nd.right, static_cast<std::uint8_t>(f.depth + 1)});
    }
  }

  // Length-limit: clamp, then repair Kraft (sum 2^-len <= 1, in units of
  // 2^-kMaxCodeLen). Deepening the deepest non-max leaf costs the least
  // code space per step and always terminates: each step shrinks K by
  // >= 1 unit, and with <= 261 symbols K at all-max depth is far under
  // budget.
  std::uint64_t kraft = 0;
  for (std::uint32_t s = 0; s < kAlphabet; ++s) {
    if (lengths[s] == 0) continue;
    if (lengths[s] > kMaxCodeLen) lengths[s] = kMaxCodeLen;
    kraft += 1ULL << (kMaxCodeLen - lengths[s]);
  }
  const std::uint64_t budget = 1ULL << kMaxCodeLen;
  while (kraft > budget) {
    std::int32_t best = -1;
    for (std::uint32_t s = 0; s < kAlphabet; ++s)
      if (lengths[s] > 0 && lengths[s] < kMaxCodeLen &&
          (best < 0 || lengths[s] > lengths[static_cast<std::size_t>(best)]))
        best = static_cast<std::int32_t>(s);
    MDL_CHECK(best >= 0, "internal: cannot repair Kraft inequality");
    const auto b = static_cast<std::size_t>(best);
    kraft -= 1ULL << (kMaxCodeLen - lengths[b] - 1);
    ++lengths[b];
  }
  return lengths;
}

/// Canonical codes: symbols sorted by (length, symbol), codes assigned in
/// that order — identical discipline to huffman.cpp so the two coders stay
/// cross-checkable.
std::array<std::uint32_t, kAlphabet> canonical_codes(
    const std::array<std::uint8_t, kAlphabet>& lengths) {
  std::vector<std::uint32_t> order;
  for (std::uint32_t s = 0; s < kAlphabet; ++s)
    if (lengths[s] > 0) order.push_back(s);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return lengths[a] != lengths[b] ? lengths[a] < lengths[b]
                                              : a < b;
            });
  std::array<std::uint32_t, kAlphabet> codes{};
  std::uint32_t code = 0;
  std::uint8_t prev_len = 0;
  for (const std::uint32_t s : order) {
    code <<= (lengths[s] - prev_len);
    codes[s] = code;
    ++code;
    prev_len = lengths[s];
  }
  return codes;
}

// ---- Bit I/O (MSB-first, same discipline as huffman.cpp) -------------------

class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}
  void put(std::uint32_t bits, std::uint8_t n) {
    acc_ = (acc_ << n) | bits;
    acc_bits_ += n;
    while (acc_bits_ >= 8) {
      out_.push_back(
          static_cast<std::uint8_t>((acc_ >> (acc_bits_ - 8)) & 0xFF));
      acc_bits_ -= 8;
    }
  }
  void flush() {
    if (acc_bits_ > 0)
      out_.push_back(
          static_cast<std::uint8_t>((acc_ << (8 - acc_bits_)) & 0xFF));
    acc_bits_ = 0;
    acc_ = 0;
  }

 private:
  std::vector<std::uint8_t>& out_;
  std::uint64_t acc_ = 0;
  int acc_bits_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size)
      : data_(data), total_bits_(size * 8) {}
  std::uint32_t get_bit() {
    MDL_CHECK(pos_ < total_bits_, "encoded block bitstream truncated");
    const std::uint8_t byte = data_[pos_ / 8];
    const std::uint32_t bit = (byte >> (7 - pos_ % 8)) & 1;
    ++pos_;
    return bit;
  }
  std::uint32_t get_bits(std::uint8_t n) {
    std::uint32_t v = 0;
    for (std::uint8_t i = 0; i < n; ++i) v = (v << 1) | get_bit();
    return v;
  }
  std::size_t bytes_consumed() const { return (pos_ + 7) / 8; }

 private:
  const std::uint8_t* data_;
  std::size_t total_bits_;
  std::size_t pos_ = 0;
};

// ---- Table serialization ---------------------------------------------------
// [u16 n_lit] + ceil(n_lit / 2) bytes of nibble-packed literal lengths
// (low nibble first) + 3 bytes of nibble-packed run-symbol lengths.

void write_table(const std::array<std::uint8_t, kAlphabet>& lengths,
                 std::vector<std::uint8_t>& out) {
  std::uint32_t n_lit = 0;
  for (std::uint32_t s = 0; s < kNumLiterals; ++s)
    if (lengths[s] > 0) n_lit = s + 1;
  out.push_back(static_cast<std::uint8_t>(n_lit & 0xFF));
  out.push_back(static_cast<std::uint8_t>(n_lit >> 8));
  const auto pack = [&out](const std::uint8_t* lens, std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; i += 2) {
      std::uint8_t byte = static_cast<std::uint8_t>(lens[i] & 0x0F);
      if (i + 1 < n) byte |= static_cast<std::uint8_t>(lens[i + 1] << 4);
      out.push_back(byte);
    }
  };
  pack(lengths.data(), n_lit);
  pack(lengths.data() + kNumLiterals, kAlphabet - kNumLiterals);
}

/// Parses + validates a code-length table; returns bytes consumed. Throws
/// on truncation, an out-of-range literal count, an empty code, or an
/// over-subscribed (Kraft > 1) table.
std::size_t read_table(const std::uint8_t* data, std::size_t size,
                       std::array<std::uint8_t, kAlphabet>& lengths) {
  MDL_CHECK(size >= 2, "encoded block too small for code-length table");
  const std::uint32_t n_lit =
      static_cast<std::uint32_t>(data[0]) |
      (static_cast<std::uint32_t>(data[1]) << 8);
  MDL_CHECK(n_lit <= kNumLiterals,
            "code table claims " << n_lit << " literals");
  const std::size_t lit_bytes = (n_lit + 1) / 2;
  const std::size_t run_bytes = (kAlphabet - kNumLiterals + 1) / 2;
  MDL_CHECK(size >= 2 + lit_bytes + run_bytes,
            "encoded block truncated inside code-length table");
  lengths.fill(0);
  const auto unpack = [](const std::uint8_t* src, std::uint8_t* lens,
                         std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint8_t byte = src[i / 2];
      lens[i] = (i % 2 == 0) ? (byte & 0x0F) : (byte >> 4);
    }
  };
  unpack(data + 2, lengths.data(), n_lit);
  unpack(data + 2 + lit_bytes, lengths.data() + kNumLiterals,
         kAlphabet - kNumLiterals);

  std::uint64_t kraft = 0;
  std::uint32_t used = 0;
  for (std::uint32_t s = 0; s < kAlphabet; ++s) {
    if (lengths[s] == 0) continue;
    ++used;
    kraft += 1ULL << (kMaxCodeLen - lengths[s]);
  }
  MDL_CHECK(used > 0, "encoded block has an empty code table");
  MDL_CHECK(kraft <= (1ULL << kMaxCodeLen),
            "over-subscribed code table (Kraft sum > 1)");
  return 2 + lit_bytes + run_bytes;
}

/// Canonical decode tables: per-length symbol counts, first codes, and the
/// (length, symbol)-sorted symbol list.
struct DecodeTable {
  std::array<std::uint32_t, kMaxCodeLen + 1> count{};
  std::array<std::uint32_t, kMaxCodeLen + 1> first_code{};
  std::array<std::uint32_t, kMaxCodeLen + 1> offset{};
  std::vector<std::uint32_t> syms;
};

DecodeTable build_decode_table(
    const std::array<std::uint8_t, kAlphabet>& lengths) {
  DecodeTable t;
  for (std::uint32_t s = 0; s < kAlphabet; ++s)
    if (lengths[s] > 0) ++t.count[lengths[s]];
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (std::uint8_t len = 1; len <= kMaxCodeLen; ++len) {
    t.first_code[len] = code;
    t.offset[len] = index;
    // read_table's Kraft check already rules out overflow here.
    code = (code + t.count[len]) << 1;
    index += t.count[len];
  }
  t.syms.reserve(index);
  for (std::uint8_t len = 1; len <= kMaxCodeLen; ++len)
    for (std::uint32_t s = 0; s < kAlphabet; ++s)
      if (lengths[s] == len) t.syms.push_back(s);
  return t;
}

// ---- Block encode / decode -------------------------------------------------

/// Entropy-codes one block into `out` (appended). Returns false when the
/// coded form would not beat the stored form, leaving `out` untouched.
bool encode_block(std::span<const std::uint8_t> raw,
                  std::vector<std::uint8_t>& out) {
  std::vector<Token> tokens;
  tokens.reserve(raw.size() / 2 + 8);
  std::array<std::uint64_t, kAlphabet> freq{};
  for (std::size_t i = 0; i < raw.size();) {
    if (raw[i] == 0) {
      std::size_t run = 1;
      while (i + run < raw.size() && raw[i + run] == 0) ++run;
      emit_run_tokens(run, tokens, freq);
      i += run;
    } else {
      tokens.push_back({raw[i], 0, 0});
      ++freq[raw[i]];
      ++i;
    }
  }

  const auto lengths = limited_code_lengths(freq);
  const auto codes = canonical_codes(lengths);

  std::vector<std::uint8_t> coded;
  coded.reserve(raw.size());
  write_table(lengths, coded);
  BitWriter bw(coded);
  for (const Token& tok : tokens) {
    bw.put(codes[tok.sym], lengths[tok.sym]);
    if (tok.extra_bits > 0)
      bw.put(tok.extra_val, static_cast<std::uint8_t>(tok.extra_bits));
  }
  bw.flush();
  if (coded.size() >= raw.size()) return false;  // stored escape wins
  out.insert(out.end(), coded.begin(), coded.end());
  return true;
}

void decode_block(const std::uint8_t* data, std::size_t enc_len,
                  std::size_t raw_len, std::vector<std::uint8_t>& out) {
  std::array<std::uint8_t, kAlphabet> lengths{};
  const std::size_t table_bytes = read_table(data, enc_len, lengths);
  const DecodeTable table = build_decode_table(lengths);

  BitReader br(data + table_bytes, enc_len - table_bytes);
  std::size_t produced = 0;
  while (produced < raw_len) {
    std::uint32_t code = 0;
    std::uint8_t len = 0;
    std::uint32_t sym = kAlphabet;
    while (true) {
      code = (code << 1) | br.get_bit();
      ++len;
      MDL_CHECK(len <= kMaxCodeLen, "invalid code in encoded block");
      if (table.count[len] > 0 && code >= table.first_code[len] &&
          code - table.first_code[len] < table.count[len]) {
        sym = table.syms[table.offset[len] + (code - table.first_code[len])];
        break;
      }
    }
    if (sym < kNumLiterals) {
      out.push_back(static_cast<std::uint8_t>(sym));
      ++produced;
      continue;
    }
    const RunSym& rs = kRunSyms[sym - kNumLiterals];
    const std::size_t run =
        rs.base + br.get_bits(static_cast<std::uint8_t>(rs.extra_bits));
    MDL_CHECK(produced + run <= raw_len,
              "zero run overflows its block (run " << run << ", "
                  << raw_len - produced << " bytes left)");
    out.insert(out.end(), run, 0);
    produced += run;
  }
  // The encoder never leaves whole unused trailing bytes; only sub-byte
  // padding may remain.
  MDL_CHECK(br.bytes_consumed() == enc_len - table_bytes,
            "trailing bytes after encoded block payload");
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

BlockCodec::BlockCodec(BlockCodecConfig config) : config_(config) {
  MDL_CHECK(config_.block_size >= 1 && config_.block_size <= kMaxBlockRaw,
            "block_size " << config_.block_size << " outside [1, "
                          << kMaxBlockRaw << "]");
}

std::vector<std::uint8_t> BlockCodec::encode(
    std::span<const std::uint8_t> raw) const {
  std::vector<std::uint8_t> out;
  out.reserve(kStreamHeaderBytes + raw.size() / 2 + 64);
  append_u32(out, kMagic);
  out.push_back(kVersion);
  append_u64(out, raw.size());
  append_u32(out, crc32_bytes(raw));

  for (std::size_t off = 0; off < raw.size(); off += config_.block_size) {
    const std::size_t raw_len =
        std::min(config_.block_size, raw.size() - off);
    const std::span<const std::uint8_t> block = raw.subspan(off, raw_len);

    const std::size_t header_at = out.size();
    out.push_back(1);  // provisional type: huffman
    append_u32(out, static_cast<std::uint32_t>(raw_len));
    append_u32(out, 0);  // enc_len backpatched below
    const std::size_t payload_at = out.size();
    if (!encode_block(block, out)) {
      out[header_at] = 0;  // stored escape
      out.insert(out.end(), block.begin(), block.end());
    }
    const auto enc_len = static_cast<std::uint32_t>(out.size() - payload_at);
    for (int i = 0; i < 4; ++i)
      out[header_at + 5 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((enc_len >> (8 * i)) & 0xFF);
  }
  return out;
}

std::vector<std::uint8_t> BlockCodec::decode(
    std::span<const std::uint8_t> enc) {
  MDL_CHECK(enc.size() >= kStreamHeaderBytes,
            "encoded stream smaller than its header ("
                << enc.size() << " bytes)");
  MDL_CHECK(load_u32(enc.data()) == kMagic, "bad BlockCodec magic");
  MDL_CHECK(enc[4] == kVersion,
            "unsupported BlockCodec version " << static_cast<int>(enc[4]));
  const std::uint64_t raw_size = load_u64(enc.data() + 5);
  const std::uint32_t want_crc = load_u32(enc.data() + 13);

  std::vector<std::uint8_t> out;
  std::size_t pos = kStreamHeaderBytes;
  while (out.size() < raw_size) {
    MDL_CHECK(enc.size() - pos >= kBlockHeaderBytes,
              "encoded stream truncated at a block header");
    const std::uint8_t type = enc[pos];
    const std::uint32_t raw_len = load_u32(enc.data() + pos + 1);
    const std::uint32_t enc_len = load_u32(enc.data() + pos + 5);
    pos += kBlockHeaderBytes;
    MDL_CHECK(type <= 1, "unknown block type " << static_cast<int>(type));
    MDL_CHECK(raw_len >= 1 && raw_len <= kMaxBlockRaw,
              "implausible block raw length " << raw_len);
    MDL_CHECK(raw_len <= raw_size - out.size(),
              "block overflows the declared raw size");
    MDL_CHECK(enc_len <= enc.size() - pos,
              "encoded stream truncated inside a block");
    out.reserve(out.size() + raw_len);
    if (type == 0) {
      MDL_CHECK(enc_len == raw_len,
                "stored block length mismatch: " << enc_len << " vs "
                                                 << raw_len);
      out.insert(out.end(), enc.begin() + static_cast<std::ptrdiff_t>(pos),
                 enc.begin() + static_cast<std::ptrdiff_t>(pos + enc_len));
    } else {
      decode_block(enc.data() + pos, enc_len, raw_len, out);
    }
    pos += enc_len;
  }
  MDL_CHECK(pos == enc.size(),
            "trailing garbage after the encoded stream ("
                << enc.size() - pos << " bytes)");
  MDL_CHECK(crc32_bytes(out) == want_crc,
            "decoded payload fails its CRC — corrupt encoded stream");
  return out;
}

std::string BlockCodec::encode_string(std::string_view raw) const {
  const auto enc = encode(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size()));
  return std::string(reinterpret_cast<const char*>(enc.data()), enc.size());
}

std::string BlockCodec::decode_string(std::string_view enc) {
  const auto raw = decode(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(enc.data()), enc.size()));
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

bool BlockCodec::looks_encoded(std::string_view bytes) {
  if (bytes.size() < kStreamHeaderBytes) return false;
  return load_u32(reinterpret_cast<const std::uint8_t*>(bytes.data())) ==
             kMagic &&
         static_cast<std::uint8_t>(bytes[4]) == kVersion;
}

std::uint64_t BlockCodec::max_encoded_size(std::uint64_t raw_size,
                                           std::size_t block_size) {
  MDL_CHECK(block_size >= 1, "block_size must be positive");
  const std::uint64_t blocks =
      raw_size == 0 ? 0 : (raw_size + block_size - 1) / block_size;
  return kStreamHeaderBytes + blocks * kBlockHeaderBytes + raw_size;
}

}  // namespace mdl::compress
