#include "compress/sparse_matrix.hpp"

#include <cmath>

namespace mdl::compress {

CsrMatrix CsrMatrix::from_dense(const Tensor& dense, float threshold) {
  MDL_CHECK(dense.ndim() == 2, "CSR needs a 2-D tensor, got "
                                   << dense.shape_str());
  MDL_CHECK(threshold >= 0.0F, "threshold must be >= 0");
  CsrMatrix m;
  m.rows_ = dense.shape(0);
  m.cols_ = dense.shape(1);
  m.row_ptr_.reserve(static_cast<std::size_t>(m.rows_) + 1);
  m.row_ptr_.push_back(0);
  for (std::int64_t i = 0; i < m.rows_; ++i) {
    for (std::int64_t j = 0; j < m.cols_; ++j) {
      const float v = dense[i * m.cols_ + j];
      if (std::abs(v) > threshold) {
        m.values_.push_back(v);
        m.cols_idx_.push_back(static_cast<std::uint32_t>(j));
      }
    }
    m.row_ptr_.push_back(static_cast<std::uint32_t>(m.values_.size()));
  }
  return m;
}

Tensor CsrMatrix::to_dense() const {
  Tensor out({rows_, cols_});
  for (std::int64_t i = 0; i < rows_; ++i)
    for (std::uint32_t k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      out[i * cols_ + cols_idx_[k]] = values_[k];
  return out;
}

Tensor CsrMatrix::matvec(const Tensor& x) const {
  MDL_CHECK(x.ndim() == 1 && x.shape(0) == cols_,
            "matvec size mismatch: " << x.shape_str() << " vs cols "
                                     << cols_);
  Tensor y({rows_});
  // float32 ascending-k chain — the library-wide accumulation policy
  // (gemm.hpp), so a CSR layer matches its dense counterpart's numerics.
  for (std::int64_t i = 0; i < rows_; ++i) {
    float acc = 0.0F;
    for (std::uint32_t k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      acc += values_[k] * x[cols_idx_[k]];
    y[i] = acc;
  }
  return y;
}

Tensor CsrMatrix::matmul(const Tensor& b) const {
  MDL_CHECK(b.ndim() == 2 && b.shape(0) == cols_,
            "matmul shape mismatch: CSR cols " << cols_ << " vs "
                                               << b.shape_str());
  const std::int64_t n = b.shape(1);
  Tensor c({rows_, n});
  for (std::int64_t i = 0; i < rows_; ++i) {
    float* crow = c.data() + i * n;
    for (std::uint32_t k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const float v = values_[k];
      const float* brow = b.data() + static_cast<std::int64_t>(cols_idx_[k]) * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
  return c;
}

double CsrMatrix::density() const {
  const std::int64_t total = rows_ * cols_;
  return total == 0 ? 0.0
                    : static_cast<double>(nnz()) / static_cast<double>(total);
}

std::uint64_t CsrMatrix::storage_bytes() const {
  return static_cast<std::uint64_t>(values_.size()) * 4 +
         static_cast<std::uint64_t>(cols_idx_.size()) * 4 +
         static_cast<std::uint64_t>(row_ptr_.size()) * 4;
}

bool CsrMatrix::worth_sparsifying(const Tensor& dense, double min_sparsity) {
  MDL_CHECK(dense.ndim() == 2, "worth_sparsifying needs a 2-D tensor");
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < dense.size(); ++i)
    if (dense[i] == 0.0F) ++zeros;
  return dense.size() > 0 &&
         static_cast<double>(zeros) >=
             min_sparsity * static_cast<double>(dense.size());
}

Tensor pruned_matmul(const Tensor& a, const Tensor& b) {
  MDL_CHECK(a.ndim() == 2 && b.ndim() == 2 && a.shape(1) == b.shape(0),
            "pruned_matmul shape mismatch " << a.shape_str() << " x "
                                            << b.shape_str());
  const std::int64_t m = a.shape(0);
  const std::int64_t k = a.shape(1);
  const std::int64_t n = b.shape(1);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = c.data();
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = po + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0F) continue;  // the point of this entry point
      const float* brow = pb + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor pruned_matvec(const Tensor& a, const Tensor& x) {
  MDL_CHECK(a.ndim() == 2 && x.ndim() == 1 && a.shape(1) == x.shape(0),
            "pruned_matvec shape mismatch " << a.shape_str() << " x "
                                            << x.shape_str());
  const std::int64_t m = a.shape(0);
  const std::int64_t k = a.shape(1);
  Tensor y({m});
  const float* pa = a.data();
  const float* px = x.data();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float acc = 0.0F;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0F) continue;
      acc += aik * px[kk];
    }
    y[i] = acc;
  }
  return y;
}

}  // namespace mdl::compress
