#include "compress/sparse_matrix.hpp"

#include <cmath>

namespace mdl::compress {

CsrMatrix CsrMatrix::from_dense(const Tensor& dense, float threshold) {
  MDL_CHECK(dense.ndim() == 2, "CSR needs a 2-D tensor, got "
                                   << dense.shape_str());
  MDL_CHECK(threshold >= 0.0F, "threshold must be >= 0");
  CsrMatrix m;
  m.rows_ = dense.shape(0);
  m.cols_ = dense.shape(1);
  m.row_ptr_.reserve(static_cast<std::size_t>(m.rows_) + 1);
  m.row_ptr_.push_back(0);
  for (std::int64_t i = 0; i < m.rows_; ++i) {
    for (std::int64_t j = 0; j < m.cols_; ++j) {
      const float v = dense[i * m.cols_ + j];
      if (std::abs(v) > threshold) {
        m.values_.push_back(v);
        m.cols_idx_.push_back(static_cast<std::uint32_t>(j));
      }
    }
    m.row_ptr_.push_back(static_cast<std::uint32_t>(m.values_.size()));
  }
  return m;
}

Tensor CsrMatrix::to_dense() const {
  Tensor out({rows_, cols_});
  for (std::int64_t i = 0; i < rows_; ++i)
    for (std::uint32_t k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      out[i * cols_ + cols_idx_[k]] = values_[k];
  return out;
}

Tensor CsrMatrix::matvec(const Tensor& x) const {
  MDL_CHECK(x.ndim() == 1 && x.shape(0) == cols_,
            "matvec size mismatch: " << x.shape_str() << " vs cols "
                                     << cols_);
  Tensor y({rows_});
  for (std::int64_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::uint32_t k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      acc += static_cast<double>(values_[k]) * x[cols_idx_[k]];
    y[i] = static_cast<float>(acc);
  }
  return y;
}

Tensor CsrMatrix::matmul(const Tensor& b) const {
  MDL_CHECK(b.ndim() == 2 && b.shape(0) == cols_,
            "matmul shape mismatch: CSR cols " << cols_ << " vs "
                                               << b.shape_str());
  const std::int64_t n = b.shape(1);
  Tensor c({rows_, n});
  for (std::int64_t i = 0; i < rows_; ++i) {
    float* crow = c.data() + i * n;
    for (std::uint32_t k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const float v = values_[k];
      const float* brow = b.data() + static_cast<std::int64_t>(cols_idx_[k]) * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += v * brow[j];
    }
  }
  return c;
}

double CsrMatrix::density() const {
  const std::int64_t total = rows_ * cols_;
  return total == 0 ? 0.0
                    : static_cast<double>(nnz()) / static_cast<double>(total);
}

std::uint64_t CsrMatrix::storage_bytes() const {
  return static_cast<std::uint64_t>(values_.size()) * 4 +
         static_cast<std::uint64_t>(cols_idx_.size()) * 4 +
         static_cast<std::uint64_t>(row_ptr_.size()) * 4;
}

}  // namespace mdl::compress
