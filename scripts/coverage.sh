#!/usr/bin/env bash
# Line-coverage report over the unit + integration test tiers.
#
# Builds with MDL_COVERAGE=ON (gcov instrumentation), runs ctest, then
# reports line coverage for src/. With gcovr installed (the CI coverage
# job installs it) an HTML report is written and the run FAILS below the
# floor; without it a plain gcov summary is printed instead.
#
# Usage: scripts/coverage.sh [build-dir]
#   MDL_COVERAGE_FLOOR=75 scripts/coverage.sh      # override the floor (%)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-coverage}"
# Floor measured when the coverage job was introduced (line coverage of
# src/ under unit+integration was ~84%); kept below that so routine noise
# doesn't fail CI while a real coverage regression does.
FLOOR="${MDL_COVERAGE_FLOOR:-75}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DMDL_COVERAGE=ON \
  -DMDL_BUILD_BENCH=OFF \
  -DMDL_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" -L 'unit|integration' \
  --output-on-failure -j "$(nproc)"

if command -v gcovr > /dev/null; then
  mkdir -p "$BUILD_DIR/coverage-html"
  gcovr --root . --filter 'src/' \
    --exclude-unreachable-branches \
    --html-details "$BUILD_DIR/coverage-html/index.html" \
    --txt "$BUILD_DIR/coverage.txt" \
    --fail-under-line "$FLOOR" \
    --print-summary \
    "$BUILD_DIR"
  echo "HTML report: $BUILD_DIR/coverage-html/index.html (floor ${FLOOR}%)"
else
  # Fallback for machines without gcovr: aggregate raw gcov line stats.
  echo "gcovr not found; falling back to a plain gcov summary" >&2
  # (no --relative-only: CMake compiles with absolute paths, which it
  # would filter out entirely; the `#src#` filename filter below scopes
  # the count to repo sources instead)
  find "$BUILD_DIR/src" -name '*.gcda' \
    -exec gcov --preserve-paths {} + > /dev/null 2>&1 || true
  total=0
  covered=0
  shopt -s nullglob
  for f in *.gcov; do
    # Only count lines from our sources, not system or test headers.
    case "$f" in
      *'#src#'*) ;;
      *) rm -f "$f"; continue ;;
    esac
    while IFS=: read -r count _line _rest; do
      count="${count//[[:space:]]/}"
      [[ "$count" == "-" ]] && continue
      total=$((total + 1))
      [[ "$count" != "#####" && "$count" != "=====" ]] && covered=$((covered + 1))
    done < "$f"
    rm -f "$f"
  done
  if [[ "$total" -eq 0 ]]; then
    echo "error: no gcov data found under $BUILD_DIR" >&2
    exit 1
  fi
  pct=$((100 * covered / total))
  echo "line coverage (src/): ${covered}/${total} = ${pct}%"
  if [[ "$pct" -lt "$FLOOR" ]]; then
    echo "error: coverage ${pct}% is below the ${FLOOR}% floor" >&2
    exit 1
  fi
fi
