#!/usr/bin/env bash
# Smoke run: configure, build, run the unit tests, then every bench in
# MDL_QUICK mode with JSONL output enabled, and finally the unit-label
# tests again under ASan+UBSan. Fails on the first error.
#
# Usage: scripts/smoke.sh [build-dir]
#   MDL_SANITIZE=address,undefined scripts/smoke.sh build-asan
#     (with MDL_SANITIZE set, the whole run is sanitized and the extra
#      sanitizer stage at the end is skipped)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-smoke}"

CMAKE_ARGS=(-B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release)
if [[ -n "${MDL_SANITIZE:-}" ]]; then
  CMAKE_ARGS+=("-DMDL_SANITIZE=${MDL_SANITIZE}")
fi
cmake "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

OUT_DIR="$BUILD_DIR/smoke-jsonl"
mkdir -p "$OUT_DIR"
BENCHES=(
  fig1_selective_sgd
  fig2_fedavg_communication
  tab_dp_federated
  fig3_split_inference
  tab_compression
  fig4_deepmood_fusion
  fig5_per_participant
  fig6_pattern_analysis
  table1_user_identification
  tab_binary_identification
  tab_mobile_inference
)
for bench in "${BENCHES[@]}"; do
  echo "=== $bench (MDL_QUICK=1) ==="
  MDL_QUICK=1 "$BUILD_DIR/bench/$bench" --json "$OUT_DIR/$bench.jsonl"
  [[ -s "$OUT_DIR/$bench.jsonl" ]] || {
    echo "error: $bench wrote no JSONL records" >&2
    exit 1
  }
done

echo "=== micro_kernels (filtered) ==="
MDL_QUICK=1 "$BUILD_DIR/bench/micro_kernels" \
  --json "$OUT_DIR/micro_kernels.jsonl" \
  --benchmark_filter='BM_DenseMatvec|BM_GruStep/1' \
  --benchmark_min_time=0.01

# Sanitizer pass: rebuild the fast unit tier with ASan+UBSan and run it.
# Skipped when the main build is already sanitized (MDL_SANITIZE set).
if [[ -z "${MDL_SANITIZE:-}" ]]; then
  ASAN_DIR="${BUILD_DIR}-asan"
  echo "=== unit tests under ASan+UBSan ($ASAN_DIR) ==="
  cmake -B "$ASAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMDL_SANITIZE=address,undefined \
    -DMDL_BUILD_BENCH=OFF \
    -DMDL_BUILD_EXAMPLES=OFF
  cmake --build "$ASAN_DIR" -j "$(nproc)"
  UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$ASAN_DIR" -L unit --output-on-failure -j "$(nproc)"
fi

echo "smoke OK: JSONL records in $OUT_DIR"
