#!/usr/bin/env bash
# Smoke run: configure, build, run the unit tests, then every bench in
# MDL_QUICK mode with JSONL output enabled, and finally the unit-label
# tests again under ASan+UBSan. Fails on the first error.
#
# Usage: scripts/smoke.sh [build-dir]
#   MDL_SANITIZE=address,undefined scripts/smoke.sh build-asan
#     (with MDL_SANITIZE set, the whole run is sanitized and the extra
#      sanitizer stage at the end is skipped)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-smoke}"

CMAKE_ARGS=(-B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release)
if [[ -n "${MDL_SANITIZE:-}" ]]; then
  CMAKE_ARGS+=("-DMDL_SANITIZE=${MDL_SANITIZE}")
fi
cmake "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# GEMM dispatch matrix: the kernel-facing tests under every MDL_GEMM
# value. simd only runs where the CPU has AVX2 (elsewhere requesting it is
# the error path the dispatch tests cover from the default run above).
for mode in naive blocked simd; do
  if [[ "$mode" == simd ]] && ! grep -qw avx2 /proc/cpuinfo; then
    echo "=== MDL_GEMM=simd skipped: CPU lacks AVX2 ==="
    continue
  fi
  echo "=== MDL_GEMM=$mode (kernel-facing tests) ==="
  MDL_GEMM=$mode "$BUILD_DIR/tests/mdl_tests" \
    --gtest_filter='Gemm*:Tensor*:Int8*:ActQuant*:Linear*:Serve*'
done

OUT_DIR="$BUILD_DIR/smoke-jsonl"
mkdir -p "$OUT_DIR"
BENCHES=(
  fig1_selective_sgd
  fig2_fedavg_communication
  fedavg_population
  tab_dp_federated
  fig3_split_inference
  tab_compression
  fig4_deepmood_fusion
  fig5_per_participant
  fig6_pattern_analysis
  table1_user_identification
  tab_binary_identification
  tab_mobile_inference
  serve_throughput
  trace_overhead
  codec_throughput
)
for bench in "${BENCHES[@]}"; do
  echo "=== $bench (MDL_QUICK=1) ==="
  MDL_QUICK=1 "$BUILD_DIR/bench/$bench" --json "$OUT_DIR/$bench.jsonl"
  [[ -s "$OUT_DIR/$bench.jsonl" ]] || {
    echo "error: $bench wrote no JSONL records" >&2
    exit 1
  }
done

# Chaos tier: the fault-tolerance suite (admission control, circuit
# breaker, seeded fault injection, SplitClient degradation ladder) with a
# fixed seed so a failure here replays exactly: rerun the same binary with
# MDL_PROP_SEED=20260808 and the identical fault schedule fires again.
echo "=== chaos tests (fixed seed, MDL_PROP_SEED=20260808) ==="
MDL_PROP_SEED=20260808 "$BUILD_DIR/tests/mdl_chaos_tests"

# Flight recorder: a serve run with MDL_TRACE_OUT must leave a Chrome-trace
# JSON that parses and passes the required-key schema check, and the
# summarizer must be able to read it back.
echo "=== flight-recorder trace (serve_throughput + trace_report.py) ==="
MDL_QUICK=1 MDL_TRACE_OUT="$OUT_DIR/trace.json" \
  "$BUILD_DIR/bench/serve_throughput" > /dev/null
python3 scripts/trace_report.py --check "$OUT_DIR/trace.json"
python3 scripts/trace_report.py "$OUT_DIR/trace.json"

# Kill-and-resume: SIGKILL a checkpointing FedAvg run mid-training, resume
# it in a fresh process, and require the final model to be byte-identical
# to an uninterrupted run — the mdl::ckpt end-to-end guarantee.
echo "=== kill-and-resume (mdl::ckpt) ==="
RUNNER="$BUILD_DIR/tests/ckpt_resume_runner"
CKPT_ROOT="$BUILD_DIR/smoke-ckpt"
rm -rf "$CKPT_ROOT"
mkdir -p "$CKPT_ROOT"
"$RUNNER" --rounds 6 --seed 17 --out "$CKPT_ROOT/ref.bin"
"$RUNNER" --rounds 6 --seed 17 --out "$CKPT_ROOT/killed.bin" \
  --checkpoint-dir "$CKPT_ROOT/ckpt" --sleep-ms 300 &
RUNNER_PID=$!
for _ in $(seq 1 600); do
  compgen -G "$CKPT_ROOT/ckpt/ckpt.*" > /dev/null && break
  sleep 0.05
done
compgen -G "$CKPT_ROOT/ckpt/ckpt.*" > /dev/null || {
  echo "error: no checkpoint appeared before the kill" >&2
  exit 1
}
kill -9 "$RUNNER_PID"
wait "$RUNNER_PID" || true
[[ ! -f "$CKPT_ROOT/killed.bin" ]] || {
  echo "error: killed run finished before SIGKILL landed" >&2
  exit 1
}
"$RUNNER" --rounds 6 --seed 17 --out "$CKPT_ROOT/resumed.bin" \
  --checkpoint-dir "$CKPT_ROOT/ckpt" --resume
cmp "$CKPT_ROOT/ref.bin" "$CKPT_ROOT/resumed.bin"
echo "kill-and-resume OK: resumed model byte-identical to uninterrupted run"

# Same crash-safety contract on the O(cohort) virtual-population path:
# shards are re-derived from (population_seed, client_id) after the resume,
# so this also exercises the checkpoint's population-fingerprint guard.
echo "=== kill-and-resume (virtual population) ==="
VCKPT_ROOT="$BUILD_DIR/smoke-ckpt-virtual"
rm -rf "$VCKPT_ROOT"
mkdir -p "$VCKPT_ROOT"
"$RUNNER" --rounds 6 --seed 17 --virtual 1000 --out "$VCKPT_ROOT/ref.bin"
"$RUNNER" --rounds 6 --seed 17 --virtual 1000 --out "$VCKPT_ROOT/killed.bin" \
  --checkpoint-dir "$VCKPT_ROOT/ckpt" --sleep-ms 300 &
RUNNER_PID=$!
for _ in $(seq 1 600); do
  compgen -G "$VCKPT_ROOT/ckpt/ckpt.*" > /dev/null && break
  sleep 0.05
done
compgen -G "$VCKPT_ROOT/ckpt/ckpt.*" > /dev/null || {
  echo "error: no checkpoint appeared before the kill (virtual)" >&2
  exit 1
}
kill -9 "$RUNNER_PID"
wait "$RUNNER_PID" || true
[[ ! -f "$VCKPT_ROOT/killed.bin" ]] || {
  echo "error: killed virtual run finished before SIGKILL landed" >&2
  exit 1
}
"$RUNNER" --rounds 6 --seed 17 --virtual 1000 --out "$VCKPT_ROOT/resumed.bin" \
  --checkpoint-dir "$VCKPT_ROOT/ckpt" --resume
cmp "$VCKPT_ROOT/ref.bin" "$VCKPT_ROOT/resumed.bin"
echo "kill-and-resume OK: virtual-population resume byte-identical"

# Same contract again with BlockCodec-compressed (format v2) checkpoints:
# the kill lands between a compressed save and the finish, and the resume
# decodes the v2 archive before a single payload byte is interpreted.
echo "=== kill-and-resume (compressed checkpoints) ==="
ZCKPT_ROOT="$BUILD_DIR/smoke-ckpt-compressed"
rm -rf "$ZCKPT_ROOT"
mkdir -p "$ZCKPT_ROOT"
"$RUNNER" --rounds 6 --seed 17 --out "$ZCKPT_ROOT/ref.bin"
"$RUNNER" --rounds 6 --seed 17 --out "$ZCKPT_ROOT/killed.bin" \
  --checkpoint-dir "$ZCKPT_ROOT/ckpt" --compress-ckpt --sleep-ms 300 &
RUNNER_PID=$!
for _ in $(seq 1 600); do
  compgen -G "$ZCKPT_ROOT/ckpt/ckpt.*" > /dev/null && break
  sleep 0.05
done
compgen -G "$ZCKPT_ROOT/ckpt/ckpt.*" > /dev/null || {
  echo "error: no checkpoint appeared before the kill (compressed)" >&2
  exit 1
}
kill -9 "$RUNNER_PID"
wait "$RUNNER_PID" || true
[[ ! -f "$ZCKPT_ROOT/killed.bin" ]] || {
  echo "error: killed compressed run finished before SIGKILL landed" >&2
  exit 1
}
"$RUNNER" --rounds 6 --seed 17 --out "$ZCKPT_ROOT/resumed.bin" \
  --checkpoint-dir "$ZCKPT_ROOT/ckpt" --compress-ckpt --resume
cmp "$ZCKPT_ROOT/ref.bin" "$ZCKPT_ROOT/resumed.bin"
echo "kill-and-resume OK: compressed-checkpoint resume byte-identical"

echo "=== micro_kernels (filtered) ==="
MDL_QUICK=1 "$BUILD_DIR/bench/micro_kernels" \
  --json "$OUT_DIR/micro_kernels.jsonl" \
  --benchmark_filter='BM_DenseMatvec|BM_GruStep/1|BM_Int8Gemm/64' \
  --benchmark_min_time=0.01

# Sanitizer pass: rebuild the fast unit tier with ASan+UBSan and run it,
# then rebuild with TSan and run the concurrency surface (thread pool,
# parallel GEMM, parallel federated/DP rounds) at two shared-pool sizes.
# Skipped when the main build is already sanitized (MDL_SANITIZE set).
if [[ -z "${MDL_SANITIZE:-}" ]]; then
  ASAN_DIR="${BUILD_DIR}-asan"
  echo "=== unit tests under ASan+UBSan ($ASAN_DIR) ==="
  cmake -B "$ASAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMDL_SANITIZE=address,undefined \
    -DMDL_BUILD_BENCH=OFF \
    -DMDL_BUILD_EXAMPLES=OFF
  cmake --build "$ASAN_DIR" -j "$(nproc)"
  UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$ASAN_DIR" -L unit --output-on-failure -j "$(nproc)"
  # The differential kernel-equivalence harness under ASan+UBSan: the AVX2
  # masked loads/stores and the unaligned-pointer sweep are exactly the
  # code sanitizers exist to vet.
  echo "=== GemmDiff harness under ASan+UBSan ==="
  UBSAN_OPTIONS=halt_on_error=1 \
    "$ASAN_DIR/tests/mdl_tests" --gtest_filter='GemmDiff.*'
  # The codec decode-hardening sweeps (every bit flip, every truncation,
  # random tampering) under ASan+UBSan: the adversarial-input contract is
  # "clean mdl::Error, zero out-of-bounds reads", which only sanitizers can
  # actually certify.
  echo "=== Codec hardening sweeps under ASan+UBSan ==="
  UBSAN_OPTIONS=halt_on_error=1 \
    "$ASAN_DIR/tests/mdl_tests" \
    --gtest_filter='Codec*:ArchiveCompressed.*'

  TSAN_DIR="${BUILD_DIR}-tsan"
  echo "=== concurrency tests under TSan ($TSAN_DIR) ==="
  cmake -B "$TSAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMDL_SANITIZE=thread \
    -DMDL_BUILD_BENCH=OFF \
    -DMDL_BUILD_EXAMPLES=OFF
  cmake --build "$TSAN_DIR" -j "$(nproc)" --target mdl_tests mdl_chaos_tests
  for threads in 2 8; do
    TSAN_OPTIONS=halt_on_error=1 MDL_THREADS=$threads \
      "$TSAN_DIR/tests/mdl_tests" \
      --gtest_filter='ThreadPool*:ParallelFor*:SharedPool*:Gemm*:*GemmEquivalence*:FedFixture*:DpFixture*:Serve*:Flight*:Population*:CodecFederated*'
  done
  # The chaos liveness property under TSan: producers x injected faults x
  # breaker transitions x shutdown, fixed seed for replayability.
  TSAN_OPTIONS=halt_on_error=1 MDL_PROP_SEED=20260808 \
    "$TSAN_DIR/tests/mdl_chaos_tests" --gtest_filter='Chaos*:Circuit*'
fi

echo "smoke OK: JSONL records in $OUT_DIR"
