#!/usr/bin/env python3
"""Summarize a mdl::obs flight-recorder Chrome-trace dump.

Usage:
  scripts/trace_report.py trace.json            # per-span stats + critical path
  scripts/trace_report.py --check trace.json    # schema validation only

Stats mode pairs thread-scoped B/E events (per pid+tid stack) and async
b/e events (matched on cat+id+name, the Chrome trace-event contract) into
durations, prints per-name count/p50/p99, and reconstructs the critical
path of the slowest completed `serve.request` async span: how long that
request sat in the queue vs executed vs waited to resolve.

Check mode validates the structural schema the repo's tests and CI rely
on: a top-level `traceEvents` list, required keys per event, `b`/`e`
events carrying an `id`, and numeric timestamps. Exits non-zero on the
first violation, so it doubles as the smoke-test gate for dumps produced
by `MDL_TRACE_OUT=... bench/serve_throughput`.

A wrapped ring drops the oldest events, which can leave unmatched begins
or ends at the seam; both modes tolerate (and count) those.
"""

import argparse
import collections
import json
import sys

REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")
KNOWN_PHASES = {"B", "E", "b", "e", "i", "C", "M"}


def fail(msg):
    print(f"trace_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents must be a list")
    return events


def check(path, events):
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"event {i}: not an object")
        for key in REQUIRED_KEYS:
            # Metadata records (thread names) carry no timestamp.
            if key == "ts" and e.get("ph") == "M":
                continue
            if key not in e:
                fail(f"event {i} ({e.get('name', '?')}): missing key {key!r}")
        if e["ph"] not in KNOWN_PHASES:
            fail(f"event {i} ({e['name']}): unknown phase {e['ph']!r}")
        if e["ph"] != "M" and not isinstance(e["ts"], (int, float)):
            fail(f"event {i} ({e['name']}): non-numeric ts {e['ts']!r}")
        if e["ph"] in ("b", "e") and ("id" not in e or "cat" not in e):
            fail(f"event {i} ({e['name']}): async event without id/cat")
    n_spans = sum(1 for e in events if e["ph"] in "Bb")
    print(f"trace_report: OK: {path}: {len(events)} events, "
          f"{n_spans} span opens, schema valid")


def pair_durations(events):
    """(name -> [duration_us]) over both thread-scoped and async spans."""
    durations = collections.defaultdict(list)
    unmatched = 0

    stacks = collections.defaultdict(list)  # (pid, tid) -> [(name, ts)]
    for e in events:
        if e["ph"] == "B":
            stacks[(e["pid"], e["tid"])].append((e["name"], e["ts"]))
        elif e["ph"] == "E":
            stack = stacks[(e["pid"], e["tid"])]
            if stack and stack[-1][0] == e["name"]:
                name, ts0 = stack.pop()
                durations[name].append(e["ts"] - ts0)
            else:
                unmatched += 1  # ring-wrap seam

    opens = {}  # (cat, id, name) -> ts
    for e in events:
        if e["ph"] == "b":
            opens[(e["cat"], e["id"], e["name"])] = e["ts"]
        elif e["ph"] == "e":
            ts0 = opens.pop((e["cat"], e["id"], e["name"]), None)
            if ts0 is None:
                unmatched += 1
            else:
                durations[e["name"]].append(e["ts"] - ts0)
    unmatched += len(opens) + sum(len(s) for s in stacks.values())
    return durations, unmatched


def quantile(sorted_values, q):
    if not sorted_values:
        return 0.0
    idx = int(q * (len(sorted_values) - 1))
    return sorted_values[idx]


def critical_path(events):
    """Timeline of the slowest completed serve.request async span."""
    spans = collections.defaultdict(dict)  # id -> name -> (ts_b, ts_e)
    opens = {}
    for e in events:
        if e["ph"] == "b":
            opens[(e["id"], e["name"])] = e["ts"]
        elif e["ph"] == "e":
            ts0 = opens.pop((e["id"], e["name"]), None)
            if ts0 is not None:
                spans[e["id"]][e["name"]] = (ts0, e["ts"])

    slowest, slowest_id = None, None
    for rid, named in spans.items():
        if "serve.request" not in named:
            continue
        ts0, ts1 = named["serve.request"]
        if slowest is None or ts1 - ts0 > slowest:
            slowest, slowest_id = ts1 - ts0, rid
    if slowest_id is None:
        print("\ncritical path: no completed serve.request span in trace")
        return

    named = spans[slowest_id]
    req0, req1 = named["serve.request"]
    print(f"\ncritical path of slowest request (id {slowest_id}, "
          f"{slowest:.1f}us total):")
    cursor = req0
    for stage in ("serve.queue", "serve.exec"):
        if stage not in named:
            print(f"  {stage:<14} (not in trace — ring wrapped?)")
            continue
        ts0, ts1 = named[stage]
        if ts0 - cursor > 0.5:
            print(f"  {'(gap)':<14} {ts0 - cursor:10.1f}us")
        print(f"  {stage:<14} {ts1 - ts0:10.1f}us")
        cursor = ts1
    if req1 - cursor > 0.5:
        print(f"  {'(resolve)':<14} {req1 - cursor:10.1f}us")


def report(path, events):
    durations, unmatched = pair_durations(events)
    counters = sum(1 for e in events if e["ph"] == "C")
    instants = sum(1 for e in events if e["ph"] == "i")
    print(f"{path}: {len(events)} events "
          f"({counters} counter samples, {instants} instants, "
          f"{unmatched} unmatched span halves)")
    if durations:
        print(f"\n{'span':<24} {'count':>7} {'p50_us':>10} {'p99_us':>10}")
        for name in sorted(durations):
            vals = sorted(durations[name])
            print(f"{name:<24} {len(vals):>7} {quantile(vals, 0.5):>10.1f} "
                  f"{quantile(vals, 0.99):>10.1f}")
    critical_path(events)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--check", action="store_true",
                        help="validate schema only (exit non-zero on error)")
    args = parser.parse_args()

    events = load(args.trace)
    if args.check:
        check(args.trace, events)
    else:
        report(args.trace, events)


if __name__ == "__main__":
    main()
