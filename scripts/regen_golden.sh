#!/usr/bin/env bash
# Regenerates the golden JSONL traces under tests/golden/ from the current
# build. Run this ONLY after an intentional behaviour change to fig2/fig4,
# then review the diff — every changed non-timing field should be explained
# by your change (see DESIGN.md §Testing strategy).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target fig2_fedavg_communication fig4_deepmood_fusion

mkdir -p tests/golden
# MDL_GEMM=blocked: goldens record the canonical scalar-chain floats; the
# AVX2 default would bake machine-dependent (ULP-shifted) values in.
MDL_QUICK=1 MDL_GEMM=blocked "$BUILD_DIR/bench/fig2_fedavg_communication" \
  --json tests/golden/fig2_quick.jsonl >/dev/null
MDL_QUICK=1 MDL_GEMM=blocked "$BUILD_DIR/bench/fig4_deepmood_fusion" \
  --json tests/golden/fig4_quick.jsonl >/dev/null

echo "regenerated:"
wc -l tests/golden/fig2_quick.jsonl tests/golden/fig4_quick.jsonl
echo "review 'git diff tests/golden' before committing"
